//! Per-dimension access sets and conservative overlap testing.
//!
//! A [`DimSet`] abstracts the set of indices a reference touches in one data
//! dimension: a point (border element), a range swept by a loop variable, or
//! the fused-level variable itself with an offset. Overlap tests are
//! resolved under the "all parameters large" order; whenever two sets cannot
//! be proved disjoint they are assumed to overlap (safe for dependences).

use gcr_ir::{LinExpr, Program, Range, Stmt, Subscript, VarId};
use std::cmp::Ordering;
use std::collections::HashMap;

/// Map from loop variable to its iteration range (the declared loop bounds).
pub type VarRanges = HashMap<VarId, Range>;

/// Collects the iteration range of every loop in the program.
pub fn var_ranges(prog: &Program) -> VarRanges {
    let mut m = HashMap::new();
    prog.walk(|gs, _| {
        if let Stmt::Loop(l) = &gs.stmt {
            m.insert(l.var, l.range());
        }
    });
    m
}

/// Collects loop ranges from a statement subtree into an existing map.
pub fn extend_var_ranges(stmt: &Stmt, m: &mut VarRanges) {
    if let Stmt::Loop(l) = stmt {
        m.insert(l.var, l.range());
        for gs in &l.body {
            extend_var_ranges(&gs.stmt, m);
        }
    }
}

/// Abstract index set in a single data dimension.
#[derive(Clone, Debug, PartialEq)]
pub enum DimSet {
    /// The fusion-level variable with a constant offset: `t + k`.
    LevelVar(i64),
    /// An index range (from a non-level loop variable sweep, offset applied).
    Span(Range),
    /// A single loop-invariant position.
    Point(LinExpr),
}

impl DimSet {
    /// Builds the dim set for a subscript, relative to fusion variable
    /// `level`. `ranges` supplies other loop variables' bounds.
    pub fn from_subscript(sub: &Subscript, level: VarId, ranges: &VarRanges) -> DimSet {
        match sub {
            Subscript::Var { var, offset } if *var == level => DimSet::LevelVar(*offset),
            Subscript::Var { var, offset } => match ranges.get(var) {
                Some(r) => DimSet::Span(r.shift(*offset)),
                // Unknown variable range: treat as unbounded span.
                None => DimSet::Span(Range::new(
                    LinExpr::konst(i64::MIN / 4),
                    LinExpr::konst(i64::MAX / 4),
                )),
            },
            Subscript::Invariant(e) => DimSet::Point(e.clone()),
        }
    }

    /// The index range covered, for sets that have one independent of the
    /// fused-level time (everything except `LevelVar`, which needs the loop
    /// range). `level_range` supplies it.
    pub fn span(&self, level_range: &Range) -> Range {
        match self {
            DimSet::LevelVar(k) => level_range.shift(*k),
            DimSet::Span(r) => r.clone(),
            DimSet::Point(p) => Range::new(p.clone(), p.clone()),
        }
    }

    /// Conservative overlap test: `false` only when provably disjoint under
    /// the large-parameter order.
    pub fn may_overlap(&self, other: &DimSet, level_range: &Range) -> bool {
        let a = self.span(level_range);
        let b = other.span(level_range);
        ranges_may_overlap(&a, &b)
    }
}

/// Conservative range-overlap test: returns `false` only when one range
/// provably ends before the other begins (for all large parameter values).
pub fn ranges_may_overlap(a: &Range, b: &Range) -> bool {
    let a_before_b = matches!(a.hi.cmp_for_large_params(&b.lo), Some(Ordering::Less));
    let b_before_a = matches!(b.hi.cmp_for_large_params(&a.lo), Some(Ordering::Less));
    !(a_before_b || b_before_a)
}

/// Conservative point-in-range test: `Some(false)` when provably outside,
/// `Some(true)` when provably inside, `None` when unknown.
pub fn point_in_range(p: &LinExpr, r: &Range) -> Option<bool> {
    let lo = p.cmp_for_large_params(&r.lo)?;
    let hi = p.cmp_for_large_params(&r.hi)?;
    Some(lo != Ordering::Less && hi != Ordering::Greater)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_ir::{LinExpr, ParamId, ProgramBuilder, Subscript};

    fn n() -> LinExpr {
        LinExpr::param(ParamId::from_index(0))
    }

    #[test]
    fn range_overlap_cases() {
        // [1,2] vs [3,N]: disjoint
        assert!(!ranges_may_overlap(&Range::consts(1, 2), &Range::new(LinExpr::konst(3), n())));
        // [2,N-1] vs [3,N]: overlap
        assert!(ranges_may_overlap(
            &Range::new(LinExpr::konst(2), n().add_const(-1)),
            &Range::new(LinExpr::konst(3), n())
        ));
        // [N,N] vs [1,N-2]: disjoint
        assert!(!ranges_may_overlap(
            &Range::new(n(), n()),
            &Range::new(LinExpr::konst(1), n().add_const(-2))
        ));
    }

    #[test]
    fn point_tests() {
        let r = Range::new(LinExpr::konst(2), n().add_const(-1));
        assert_eq!(point_in_range(&LinExpr::konst(1), &r), Some(false));
        assert_eq!(point_in_range(&LinExpr::konst(5), &r), Some(true));
        assert_eq!(point_in_range(&n(), &r), Some(false));
        assert_eq!(point_in_range(&n().add_const(-3), &r), Some(true));
    }

    #[test]
    fn dimset_from_subscripts() {
        let mut b = ProgramBuilder::new("t");
        let np = b.param("N");
        let _a = b.array("A", &[LinExpr::param(np)]);
        let i = b.var("i");
        let j = b.var("j");
        let mut ranges = VarRanges::new();
        ranges.insert(j, Range::new(LinExpr::konst(1), LinExpr::param(np)));
        let lv = DimSet::from_subscript(&Subscript::var(i, 2), i, &ranges);
        assert_eq!(lv, DimSet::LevelVar(2));
        let sp = DimSet::from_subscript(&Subscript::var(j, -1), i, &ranges);
        assert_eq!(
            sp,
            DimSet::Span(Range::new(LinExpr::konst(0), LinExpr::param(np).add_const(-1)))
        );
        let pt = DimSet::from_subscript(&Subscript::konst(7), i, &ranges);
        assert_eq!(pt, DimSet::Point(LinExpr::konst(7)));
    }

    #[test]
    fn levelvar_span_uses_loop_range() {
        let d = DimSet::LevelVar(-2);
        let lr = Range::new(LinExpr::konst(3), n());
        assert_eq!(d.span(&lr), Range::new(LinExpr::konst(1), n().add_const(-2)));
    }

    #[test]
    fn var_ranges_walks_program() {
        let mut b = ProgramBuilder::new("t");
        let np = b.param("N");
        let a = b.array("A", &[LinExpr::param(np), LinExpr::param(np)]);
        let i = b.var("i");
        let j = b.var("j");
        let s =
            b.assign(a, vec![Subscript::var(j, 0), Subscript::var(i, 0)], gcr_ir::Expr::Const(0.0));
        let inner = b.for_(j, LinExpr::konst(2), LinExpr::param(np).add_const(-1), vec![s]);
        let outer = b.for_(i, LinExpr::konst(1), LinExpr::param(np), vec![inner]);
        b.push(outer);
        let p = b.finish();
        let r = var_ranges(&p);
        assert_eq!(r.len(), 2);
        assert_eq!(r[&i], Range::new(LinExpr::konst(1), LinExpr::param(np)));
    }
}
