//! Flattened collection of array accesses from statements.

use gcr_ir::{ArrayRef, AssignKind, GuardedStmt, ReduceOp, RefId, Stmt, StmtId};
use std::collections::BTreeSet;

/// How a reference touches its array.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Value is read.
    Read,
    /// Value is written.
    Write,
    /// Associative read-modify-write; instances with the same operator
    /// commute, so two `Reduce` accesses of the same kind impose no ordering
    /// on each other.
    Reduce(ReduceOp),
}

impl AccessKind {
    /// True when an ordered pair of accesses to the same datum must preserve
    /// its order (i.e. forms a dependence).
    pub fn conflicts(self, other: AccessKind) -> bool {
        match (self, other) {
            (AccessKind::Read, AccessKind::Read) => false,
            (AccessKind::Reduce(a), AccessKind::Reduce(b)) => a != b,
            _ => true,
        }
    }

    /// True for kinds that modify the datum.
    pub fn writes(self) -> bool {
        !matches!(self, AccessKind::Read)
    }
}

/// One array access occurrence inside a statement.
#[derive(Clone, Debug)]
pub struct AccessInfo {
    /// The reference (array, subscripts, ref id).
    pub aref: ArrayRef,
    /// Read, write or reduce.
    pub kind: AccessKind,
    /// Statement the access belongs to.
    pub stmt: StmtId,
}

impl AccessInfo {
    /// Reference id shorthand.
    pub fn ref_id(&self) -> RefId {
        self.aref.id
    }
}

/// Collects every access in a statement, recursing into nested loops.
/// A reduction's target contributes a single `Reduce` access (not separate
/// read and write).
pub fn collect_accesses(stmt: &Stmt, out: &mut Vec<AccessInfo>) {
    match stmt {
        Stmt::Assign(a) => {
            a.rhs.visit_reads(&mut |r| {
                out.push(AccessInfo { aref: r.clone(), kind: AccessKind::Read, stmt: a.id });
            });
            let kind = match a.kind {
                AssignKind::Normal => AccessKind::Write,
                AssignKind::Reduce(op) => AccessKind::Reduce(op),
            };
            out.push(AccessInfo { aref: a.lhs.clone(), kind, stmt: a.id });
        }
        Stmt::Loop(l) => {
            for gs in &l.body {
                collect_accesses(&gs.stmt, out);
            }
        }
    }
}

/// Collects accesses from a guarded-statement list.
pub fn collect_accesses_list(stmts: &[GuardedStmt], out: &mut Vec<AccessInfo>) {
    for gs in stmts {
        collect_accesses(&gs.stmt, out);
    }
}

/// The set of arrays a statement touches (its data-sharing signature; the
/// paper's `GreedilyFuse` fuses a statement with the closest predecessor
/// sharing any array).
pub fn touched_arrays(stmt: &Stmt) -> BTreeSet<gcr_ir::ArrayId> {
    let mut v = Vec::new();
    collect_accesses(stmt, &mut v);
    v.into_iter().map(|a| a.aref.array).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_ir::{Expr, LinExpr, ProgramBuilder, Subscript};

    #[test]
    fn conflict_matrix() {
        use AccessKind::*;
        assert!(!Read.conflicts(Read));
        assert!(Read.conflicts(Write));
        assert!(Write.conflicts(Write));
        assert!(!Reduce(ReduceOp::Sum).conflicts(Reduce(ReduceOp::Sum)));
        assert!(Reduce(ReduceOp::Sum).conflicts(Reduce(ReduceOp::Max)));
        assert!(Reduce(ReduceOp::Sum).conflicts(Read));
    }

    #[test]
    fn collects_nested_and_kinds() {
        let mut b = ProgramBuilder::new("t");
        let n = b.param("N");
        let a = b.array("A", &[LinExpr::param(n)]);
        let s = b.scalar("s");
        let i = b.var("i");
        let rhs = b.read(a, vec![Subscript::var(i, -1)]);
        let s1 = b.assign(a, vec![Subscript::var(i, 0)], rhs);
        let rhs2 = b.read(a, vec![Subscript::var(i, 0)]);
        let s2 = b.reduce(gcr_ir::ReduceOp::Sum, s, vec![], rhs2);
        let l = b.for_(i, LinExpr::konst(2), LinExpr::param(n), vec![s1, s2]);
        let mut out = Vec::new();
        collect_accesses(&l, &mut out);
        assert_eq!(out.len(), 4);
        assert_eq!(out[0].kind, AccessKind::Read);
        assert_eq!(out[1].kind, AccessKind::Write);
        assert_eq!(out[3].kind, AccessKind::Reduce(gcr_ir::ReduceOp::Sum));
        let arrays = touched_arrays(&l);
        assert_eq!(arrays.len(), 2);
        let _ = Expr::Const(0.0);
    }
}
