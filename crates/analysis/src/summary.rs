//! Loop data-footprint summaries.
//!
//! "The data access of each loop is summarized by its data footprint. For
//! each dimension of an array, a data footprint records whether the loop
//! accesses the whole dimension, a number of elements on the border, or a
//! loop-variant section (a range enclosing the loop index variable)."
//! (Section 4.1.) This module renders exactly that record for inspection
//! (`gcrc --footprints`) and for tests that pin the analysis behaviour.

use crate::access::{collect_accesses, AccessKind};
use crate::footprint::{extend_var_ranges, VarRanges};
use gcr_ir::{ArrayId, LinExpr, Loop, Program, Range, Stmt, Subscript};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Access summary of one array dimension within one loop.
#[derive(Clone, Debug, PartialEq)]
pub enum DimSummary {
    /// Swept by a loop variable: a loop-variant section `[var+min, var+max]`
    /// offsets around the named loop level, or the whole range of an inner
    /// loop.
    Section {
        /// Variable name sweeping the dimension.
        var: String,
        /// Smallest constant offset seen.
        min_off: i64,
        /// Largest constant offset seen.
        max_off: i64,
    },
    /// Only loop-invariant (border) positions.
    Border(Vec<LinExpr>),
    /// Both a swept section and border positions.
    Mixed {
        /// Variable name sweeping the dimension.
        var: String,
        /// Offset hull of the swept part.
        min_off: i64,
        /// Offset hull of the swept part.
        max_off: i64,
        /// Invariant positions also touched.
        borders: Vec<LinExpr>,
    },
}

/// Footprint of one array within one loop.
#[derive(Clone, Debug, PartialEq)]
pub struct ArrayFootprint {
    /// The array.
    pub array: ArrayId,
    /// Whether the loop writes (or reduces into) the array.
    pub written: bool,
    /// Summary per data dimension (innermost first).
    pub dims: Vec<DimSummary>,
}

/// Computes the footprint of every array a loop accesses.
pub fn loop_footprint(l: &Loop, prog: &Program) -> Vec<ArrayFootprint> {
    let mut ranges = VarRanges::new();
    let stmt = Stmt::Loop(l.clone());
    extend_var_ranges(&stmt, &mut ranges);
    let mut accs = Vec::new();
    collect_accesses(&stmt, &mut accs);
    // Per array: per dim, offsets per var + invariant points.
    struct DimAcc {
        offs: BTreeMap<gcr_ir::VarId, (i64, i64)>,
        points: Vec<LinExpr>,
    }
    let mut per: BTreeMap<ArrayId, (bool, Vec<DimAcc>)> = BTreeMap::new();
    for a in &accs {
        let rank = a.aref.subs.len();
        let entry = per.entry(a.aref.array).or_insert_with(|| {
            (
                false,
                (0..rank).map(|_| DimAcc { offs: BTreeMap::new(), points: Vec::new() }).collect(),
            )
        });
        entry.0 |= !matches!(a.kind, AccessKind::Read);
        for (d, sub) in a.aref.subs.iter().enumerate() {
            match sub {
                Subscript::Var { var, offset } => {
                    let e = entry.1[d].offs.entry(*var).or_insert((*offset, *offset));
                    e.0 = e.0.min(*offset);
                    e.1 = e.1.max(*offset);
                }
                Subscript::Invariant(k) => {
                    if !entry.1[d].points.contains(k) {
                        entry.1[d].points.push(k.clone());
                    }
                }
            }
        }
    }
    per.into_iter()
        .map(|(array, (written, dims))| ArrayFootprint {
            array,
            written,
            dims: dims
                .into_iter()
                .map(|d| {
                    // Pick the dominant sweeping variable (first by id).
                    match d.offs.iter().next() {
                        Some((&v, &(lo, hi))) if d.points.is_empty() => DimSummary::Section {
                            var: prog.var(v).name.clone(),
                            min_off: lo,
                            max_off: hi,
                        },
                        Some((&v, &(lo, hi))) => DimSummary::Mixed {
                            var: prog.var(v).name.clone(),
                            min_off: lo,
                            max_off: hi,
                            borders: d.points,
                        },
                        None => DimSummary::Border(d.points),
                    }
                })
                .collect(),
        })
        .collect()
}

/// Renders the footprints of every top-level loop in a program.
pub fn render_footprints(prog: &Program) -> String {
    let mut out = String::new();
    let lin = |e: &LinExpr| {
        let namer = |q: gcr_ir::ParamId| prog.param(q).name.clone();
        format!("{}", e.display_with(&namer))
    };
    for (idx, gs) in prog.body.iter().enumerate() {
        let Stmt::Loop(l) = &gs.stmt else { continue };
        let Range { lo, hi } = l.range();
        let _ =
            writeln!(out, "loop [{idx}] {} = {}, {}:", prog.var(l.var).name, lin(&lo), lin(&hi));
        for fp in loop_footprint(l, prog) {
            let dims: Vec<String> = fp
                .dims
                .iter()
                .map(|d| match d {
                    DimSummary::Section { var, min_off, max_off } => {
                        format!("{var}{min_off:+}..{var}{max_off:+}")
                    }
                    DimSummary::Border(pts) => {
                        let p: Vec<_> = pts.iter().map(&lin).collect();
                        format!("border {{{}}}", p.join(", "))
                    }
                    DimSummary::Mixed { var, min_off, max_off, borders } => {
                        let p: Vec<_> = borders.iter().map(&lin).collect();
                        format!("{var}{min_off:+}..{var}{max_off:+} + border {{{}}}", p.join(", "))
                    }
                })
                .collect();
            let _ = writeln!(
                out,
                "  {:<8} {} [{}]",
                prog.array(fp.array).name,
                if fp.written { "rw" } else { "ro" },
                dims.join(", ")
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcr_frontend::parse;

    #[test]
    fn records_sections_and_borders() {
        let p = parse(
            "
program f
param N
array A[N, N], B[N, N]

for i = 2, N - 1 {
  for j = 2, N - 1 {
    A[j, i] = f(A[j-1, i], A[j+1, i], B[1, i], B[N, i])
  }
}
",
        )
        .unwrap();
        let l = p.body[0].stmt.as_loop().unwrap();
        let fps = loop_footprint(l, &p);
        assert_eq!(fps.len(), 2);
        let a = &fps[0];
        assert!(a.written);
        assert_eq!(a.dims[0], DimSummary::Section { var: "j".into(), min_off: -1, max_off: 1 });
        assert_eq!(a.dims[1], DimSummary::Section { var: "i".into(), min_off: 0, max_off: 0 });
        let b = &fps[1];
        assert!(!b.written);
        match &b.dims[0] {
            DimSummary::Border(pts) => assert_eq!(pts.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn renders_readably() {
        let p = parse(
            "
program f
param N
array A[N]

for i = 2, N {
  A[i] = f(A[i-1], A[1])
}
",
        )
        .unwrap();
        let txt = render_footprints(&p);
        assert!(txt.contains("loop [0] i = 2, N:"), "{txt}");
        assert!(txt.contains("A        rw [i-1..i+0 + border {1}]"), "{txt}");
    }
}
