//! End-to-end tests of the real `gcr-serve` binary (spawned as a child
//! process) and a small `gcr-chaos` campaign — the same harness the CI
//! chaos-smoke job runs with a bigger budget.

use gcr_serve::proto::{read_frame, write_frame, ErrCode, FrameIn, Request, Response};
use std::io::Write;
use std::process::{Command, ExitStatus, Stdio};

/// Runs the daemon on stdio: feeds it `frames`, closes stdin, returns
/// every response frame and the exit status.
fn run_stdio(envs: &[(&str, &str)], requests: &[Request]) -> (Vec<Response>, ExitStatus) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_gcr-serve"));
    cmd.env_remove("GCR_FAULT")
        .env_remove("GCR_FAULT_SEED")
        .env_remove("GCR_MEASURE_CACHE")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let mut child = cmd.spawn().expect("spawn gcr-serve");
    let mut stdin = child.stdin.take().expect("stdin");
    for req in requests {
        write_frame(&mut stdin, &req.encode()).expect("write request");
    }
    stdin.flush().unwrap();
    drop(stdin); // EOF ends the connection if no shutdown was sent.
    let out = child.wait_with_output().expect("server output");
    let mut responses = Vec::new();
    let mut r = &out.stdout[..];
    loop {
        match read_frame(&mut r) {
            Ok(FrameIn::Frame(payload)) => {
                responses.push(Response::parse(&payload).expect("parse response"))
            }
            Ok(FrameIn::Eof) => break,
            other => panic!("unexpected read result: {other:?}"),
        }
    }
    (responses, out.status)
}

const DEMO: &str = "
program demo
param N
array A[N], B[N]
for i = 1, N {
  A[i] = f(A[i])
}
for i = 1, N {
  B[i] = g(A[i], B[i])
}
";

#[test]
fn stdio_daemon_serves_and_shuts_down_cleanly() {
    let (responses, status) = run_stdio(
        &[],
        &[
            Request::new("health"),
            Request::new("optimize").with("strategy", "fuse").with_body(DEMO),
            Request::new("measure").with("app", "ADI").with("size", 10),
            Request::new("nonsense"),
            Request::new("shutdown"),
        ],
    );
    assert!(status.success(), "clean exit, got {status}");
    assert_eq!(responses.len(), 5, "{responses:?}");
    assert!(responses[0].is_ok(), "health: {}", responses[0].body);
    assert!(responses[1].is_ok(), "optimize: {}", responses[1].body);
    assert!(responses[1].body.contains("program demo"), "{}", responses[1].body);
    assert!(responses[2].is_ok(), "measure: {}", responses[2].body);
    assert!(responses[2].body.contains("\"l1\""), "{}", responses[2].body);
    assert_eq!(responses[3].code, Some(ErrCode::BadRequest));
    assert!(responses[4].is_ok(), "shutdown: {}", responses[4].body);
}

#[test]
fn wrong_protocol_version_is_rejected_not_fatal() {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_gcr-serve"));
    let mut child = cmd
        .env_remove("GCR_FAULT")
        .env_remove("GCR_MEASURE_CACHE")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn");
    let mut stdin = child.stdin.take().unwrap();
    write_frame(&mut stdin, b"gcr-serve/v2 health\n\n").unwrap();
    write_frame(&mut stdin, &Request::new("health").encode()).unwrap();
    drop(stdin);
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let mut r = &out.stdout[..];
    let first = match read_frame(&mut r).unwrap() {
        FrameIn::Frame(p) => Response::parse(&p).unwrap(),
        other => panic!("{other:?}"),
    };
    assert_eq!(first.code, Some(ErrCode::UnsupportedVersion), "{}", first.body);
    let second = match read_frame(&mut r).unwrap() {
        FrameIn::Frame(p) => Response::parse(&p).unwrap(),
        other => panic!("{other:?}"),
    };
    assert!(second.is_ok(), "the daemon must keep serving after a version mismatch");
}

#[test]
fn injected_pass_panic_fails_the_request_not_the_daemon() {
    let (responses, status) = run_stdio(
        &[("GCR_FAULT", "panic_in_pass")],
        &[
            Request::new("optimize").with("strategy", "fuse").with_body(DEMO),
            Request::new("health"),
            Request::new("report"),
            Request::new("shutdown"),
        ],
    );
    assert!(status.success(), "daemon must survive an injected panic, got {status}");
    assert_eq!(responses[0].code, Some(ErrCode::Panic), "{}", responses[0].body);
    assert!(responses[1].is_ok(), "still healthy after a panic: {}", responses[1].body);
    // The error counter is synchronous; the worker-side `isolated_panics`
    // counter races the unwind, so assert on the former.
    assert!(
        responses[2].body.contains("\"panic\": 1"),
        "the isolated panic must be visible in the report: {}",
        responses[2].body
    );
}

#[test]
fn injected_slow_simulation_turns_into_structured_timeout() {
    let (responses, status) = run_stdio(
        &[("GCR_FAULT", "slow_sim"), ("GCR_FAULT_SLEEP_MS", "3000")],
        &[
            Request::new("measure").with("app", "ADI").with("size", 10).with("deadline_ms", 150),
            Request::new("health"),
            Request::new("shutdown"),
        ],
    );
    assert!(status.success(), "daemon must drain the orphaned job and exit, got {status}");
    assert_eq!(responses[0].code, Some(ErrCode::Timeout), "{}", responses[0].body);
    assert!(responses[0].body.contains("\"deadline_ms\": 150"), "{}", responses[0].body);
    assert!(responses[1].is_ok(), "{}", responses[1].body);
}

#[test]
fn chaos_campaign_with_all_faults_passes() {
    let status = Command::new(env!("CARGO_BIN_EXE_gcr-chaos"))
        .args([
            "--seed",
            "1",
            "--requests",
            "40",
            "--budget-ms",
            "120000",
            "--deadline-ms",
            "10000",
            "--serve-bin",
            env!("CARGO_BIN_EXE_gcr-serve"),
        ])
        .env_remove("GCR_FAULT")
        .env_remove("GCR_MEASURE_CACHE")
        .stdout(Stdio::null())
        .status()
        .expect("run gcr-chaos");
    assert!(status.success(), "chaos campaign found violations (see chaos_repro.txt)");
}
