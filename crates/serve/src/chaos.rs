//! Chaos campaign driver: randomized client workloads with invariants.
//!
//! A campaign connects to a live `gcr-serve` daemon (usually a child
//! process with `GCR_FAULT` injections armed) and issues a seeded random
//! mix of `health`, `report`, `optimize` and `measure` requests while
//! checking the service contract from the *outside*:
//!
//! * **Liveness** — every request gets an answer (or a clean connection
//!   drop) within its deadline plus a scheduling slack; a request that
//!   hangs past that is a wedge and fails the campaign.
//! * **Availability** — if the connection dies (e.g. an injected
//!   truncated frame), reconnecting must succeed; a server that cannot
//!   be reached again has died, which no injected fault may cause.
//! * **Determinism** — an `ok` answer to a given `optimize`/`measure`
//!   request must be byte-identical every time it is asked, within a
//!   campaign and across campaigns sharing an [`Expectations`] map. This
//!   is how cache self-healing is verified: a campaign against a
//!   corrupted store must reproduce the exact bytes of the campaign that
//!   filled it.
//! * **Strictness** (fault-free runs) — with no faults armed, *no*
//!   request may fail at all.
//!
//! The workload is fully determined by the seed, so any failure is
//! reproducible from the campaign config alone.

use crate::proto::{read_frame, write_frame, ErrCode, FrameIn, ProtoError, Request, Response};
use gcr_par::rng::Rng;
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::io::ErrorKind;
use std::os::unix::net::UnixStream;
use std::time::{Duration, Instant};

/// Grace on top of the request deadline before a missing answer counts
/// as a wedged request (covers scheduling and transport latency).
pub const DEADLINE_SLACK_MS: u64 = 2_000;

/// One campaign's parameters.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Unix-socket path of the server under test.
    pub socket: String,
    /// Workload seed; same seed, same request sequence.
    pub seed: u64,
    /// Requests to issue (the budget may stop the campaign earlier).
    pub requests: u64,
    /// Wall-clock budget for the whole campaign.
    pub budget: Duration,
    /// `deadline_ms` header sent with every work request.
    pub deadline_ms: u64,
    /// Fault-free mode: any error response is a violation.
    pub strict: bool,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            socket: String::new(),
            seed: 0,
            requests: 100,
            budget: Duration::from_secs(60),
            deadline_ms: 10_000,
            strict: false,
        }
    }
}

/// Byte-exact `ok` bodies per encoded request, shared across campaigns
/// to assert cross-run determinism (e.g. before and after a cache
/// corruption + self-heal cycle).
pub type Expectations = HashMap<String, String>;

/// What a campaign observed.
#[derive(Clone, Debug, Default)]
pub struct ChaosOutcome {
    /// Requests issued.
    pub issued: u64,
    /// `ok` responses.
    pub ok: u64,
    /// Error responses by code name.
    pub errors: BTreeMap<&'static str, u64>,
    /// Times the connection died and was successfully re-established.
    pub reconnects: u64,
    /// `ok` answers checked against (or added to) the expectations map.
    pub determinism_checked: u64,
    /// Contract violations; empty means the campaign passed.
    pub violations: Vec<String>,
}

impl ChaosOutcome {
    /// Whether the campaign held every invariant.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// A framed protocol client over a unix socket.
pub struct Client {
    stream: UnixStream,
}

impl Client {
    /// Connects once.
    pub fn connect(socket: &str) -> std::io::Result<Client> {
        let stream = UnixStream::connect(socket)?;
        Ok(Client { stream })
    }

    /// Connects, retrying until `timeout` — for a server still binding
    /// its socket, or one momentarily busy tearing down a connection.
    pub fn connect_with_retry(socket: &str, timeout: Duration) -> std::io::Result<Client> {
        let start = Instant::now();
        loop {
            match Client::connect(socket) {
                Ok(c) => return Ok(c),
                Err(e) if start.elapsed() >= timeout => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(25)),
            }
        }
    }

    /// Caps how long a single `call` may block on the response.
    pub fn set_deadline(&mut self, d: Duration) -> std::io::Result<()> {
        self.stream.set_read_timeout(Some(d))
    }

    /// Sends one request and waits for its response frame.
    pub fn call(&mut self, req: &Request) -> Result<Response, ProtoError> {
        write_frame(&mut self.stream, &req.encode())?;
        match read_frame(&mut self.stream)? {
            FrameIn::Frame(payload) => Response::parse(&payload),
            FrameIn::Eof => Err(ProtoError::Io(std::io::Error::new(
                ErrorKind::UnexpectedEof,
                "connection closed before the response",
            ))),
            FrameIn::Idle => Err(ProtoError::Io(std::io::Error::new(
                ErrorKind::TimedOut,
                "no response within the read deadline",
            ))),
        }
    }
}

/// The two canned optimize inputs the workload rotates through.
pub const CHAOS_PROGRAMS: [&str; 2] = [
    "
program chain
param N
array A[N], B[N], C[N]
for i = 1, N {
  A[i] = f(A[i])
}
for i = 1, N {
  B[i] = g(A[i], B[i])
}
for i = 1, N {
  C[i] = g(B[i], C[i])
}
",
    "
program pair2d
param N
array U[N,N], V[N,N]
for j = 1, N {
  for i = 1, N {
    U[i,j] = f(U[i,j])
  }
}
for j = 1, N {
  for i = 1, N {
    V[i,j] = g(U[i,j], V[i,j])
  }
}
",
];

const STRATEGIES: [&str; 6] = ["original", "sgi", "fuse", "fuse1", "fuse+group", "group"];
const APPS: [&str; 2] = ["ADI", "SP"];

/// The `i`-th request of the campaign's seeded workload. Public so a
/// failure report can name and regenerate the exact offending request.
pub fn workload_request(cfg: &ChaosConfig, i: u64) -> Request {
    let mut rng = Rng::for_iteration(cfg.seed, i);
    match rng.below(10) {
        0 => Request::new("health"),
        1 => Request::new("report"),
        2..=5 => Request::new("optimize")
            .with("strategy", STRATEGIES[rng.below(STRATEGIES.len() as u64) as usize])
            .with("deadline_ms", cfg.deadline_ms)
            .with_body(CHAOS_PROGRAMS[rng.below(CHAOS_PROGRAMS.len() as u64) as usize]),
        _ => Request::new("measure")
            .with("app", APPS[rng.below(APPS.len() as u64) as usize])
            .with("strategy", STRATEGIES[rng.below(STRATEGIES.len() as u64) as usize])
            .with("size", rng.range(8, 12))
            .with("steps", rng.range(1, 2))
            .with("deadline_ms", cfg.deadline_ms),
    }
}

fn is_deterministic_verb(verb: &str) -> bool {
    verb == "optimize" || verb == "measure"
}

/// Runs one campaign against a live server, recording observations and
/// violations. `expected` carries byte-exact answers across campaigns.
pub fn run_campaign(cfg: &ChaosConfig, expected: &mut Expectations) -> ChaosOutcome {
    let mut out = ChaosOutcome::default();
    let started = Instant::now();
    let call_cap = Duration::from_millis(cfg.deadline_ms + DEADLINE_SLACK_MS);
    let mut client = match Client::connect_with_retry(&cfg.socket, Duration::from_secs(10)) {
        Ok(c) => c,
        Err(e) => {
            out.violations.push(format!("could not reach server at {}: {e}", cfg.socket));
            return out;
        }
    };
    let _ = client.set_deadline(call_cap);

    for i in 0..cfg.requests {
        if started.elapsed() > cfg.budget {
            break;
        }
        let req = workload_request(cfg, i);
        out.issued += 1;
        let req_started = Instant::now();
        let result = client.call(&req);
        let elapsed = req_started.elapsed();
        // Liveness: an answer (or a broken connection) must arrive within
        // deadline + slack. `call` itself is capped by the read timeout,
        // so a wedged server surfaces here rather than hanging the
        // campaign.
        if elapsed > call_cap + Duration::from_millis(500) {
            out.violations.push(format!(
                "request #{i} ({}) unanswered for {} ms (cap {} ms)",
                req.verb,
                elapsed.as_millis(),
                call_cap.as_millis()
            ));
        }
        match result {
            Ok(resp) => match resp.code {
                None => {
                    out.ok += 1;
                    if is_deterministic_verb(&req.verb) {
                        out.determinism_checked += 1;
                        let key = String::from_utf8(req.encode()).expect("requests are UTF-8");
                        match expected.get(&key) {
                            None => {
                                expected.insert(key, resp.body);
                            }
                            Some(prev) if *prev == resp.body => {}
                            Some(prev) => out.violations.push(format!(
                                "request #{i} ({}) nondeterministic:\n--- first ---\n{prev}\n--- now ---\n{}",
                                req.verb, resp.body
                            )),
                        }
                    }
                }
                Some(code) => {
                    *out.errors.entry(code.name()).or_insert(0) += 1;
                    if cfg.strict && code != ErrCode::Overloaded {
                        out.violations.push(format!(
                            "request #{i} ({}) failed `{}` in a fault-free campaign: {}",
                            req.verb,
                            code.name(),
                            resp.body.trim()
                        ));
                    }
                }
            },
            Err(e) => {
                // The connection died (torn frame, dropped peer, read
                // timeout). Availability demands a reconnect succeeds.
                match Client::connect_with_retry(&cfg.socket, Duration::from_secs(10)) {
                    Ok(c) => {
                        client = c;
                        let _ = client.set_deadline(call_cap);
                        out.reconnects += 1;
                        if cfg.strict {
                            out.violations.push(format!(
                                "request #{i} ({}) dropped the connection in a fault-free campaign: {e}",
                                req.verb
                            ));
                        }
                    }
                    Err(err) => {
                        out.violations.push(format!(
                            "server unreachable after request #{i} ({e}); reconnect failed: {err} \
                             — process death?"
                        ));
                        return out;
                    }
                }
            }
        }
    }
    out
}

/// Fetches the server's own counters (`report` verb) as raw JSON text.
pub fn fetch_report(socket: &str) -> Option<String> {
    let mut client = Client::connect_with_retry(socket, Duration::from_secs(5)).ok()?;
    let _ = client.set_deadline(Duration::from_secs(5));
    match client.call(&Request::new("report")) {
        Ok(resp) if resp.is_ok() => Some(resp.body),
        _ => None,
    }
}

/// Asks the server to drain and exit. Best-effort: the socket may
/// already be gone.
pub fn send_shutdown(socket: &str) -> bool {
    let Ok(mut client) = Client::connect_with_retry(socket, Duration::from_secs(5)) else {
        return false;
    };
    let _ = client.set_deadline(Duration::from_secs(10));
    matches!(client.call(&Request::new("shutdown")), Ok(resp) if resp.is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_seed_deterministic_and_mixed() {
        let cfg = ChaosConfig { seed: 42, ..ChaosConfig::default() };
        let mut verbs: BTreeMap<String, u64> = BTreeMap::new();
        for i in 0..200 {
            let a = workload_request(&cfg, i);
            let b = workload_request(&cfg, i);
            assert_eq!(a, b, "workload must be a pure function of (seed, i)");
            *verbs.entry(a.verb).or_insert(0) += 1;
        }
        for verb in ["health", "report", "optimize", "measure"] {
            assert!(verbs.get(verb).copied().unwrap_or(0) > 0, "no {verb} in 200 requests");
        }
        let other = ChaosConfig { seed: 43, ..ChaosConfig::default() };
        let diverged = (0..50).any(|i| workload_request(&cfg, i) != workload_request(&other, i));
        assert!(diverged, "different seeds must give different workloads");
    }

    #[test]
    fn workload_requests_stay_inside_service_bounds() {
        let cfg = ChaosConfig { seed: 7, ..ChaosConfig::default() };
        for i in 0..500 {
            let req = workload_request(&cfg, i);
            if let Some(size) = req.header("size") {
                let size: i64 = size.parse().unwrap();
                assert!((8..=crate::server::MAX_SIZE).contains(&size));
            }
            if let Some(steps) = req.header("steps") {
                let steps: usize = steps.parse().unwrap();
                assert!((1..=crate::server::MAX_STEPS).contains(&steps));
            }
        }
    }
}
