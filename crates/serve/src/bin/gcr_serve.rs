//! The `gcr-serve` daemon.
//!
//! Speaks the `gcr-serve/v1` framed protocol on stdin/stdout by default,
//! or on a unix socket with `--socket`. The measurement cache persists to
//! `GCR_MEASURE_CACHE` when set; `GCR_FAULT` arms chaos injection points
//! (see `gcr-par`'s fault module). The process exits after a `shutdown`
//! request (or EOF on stdio), draining in-flight work and flushing the
//! cache first.
//!
//! Usage: `gcr-serve [--socket PATH] [--workers N] [--queue N]
//! [--deadline-ms N]`

use gcr_bench::sweep::MeasureCache;
use gcr_serve::{Server, ServerConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
    };
    let parse = |flag: &str, default: u64| -> u64 {
        get(flag)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("bad {flag} value {v:?}")))
            .unwrap_or(default)
    };
    let socket = get("--socket");
    let defaults = ServerConfig::default();
    let cfg = ServerConfig {
        workers: parse("--workers", defaults.workers as u64) as usize,
        queue: parse("--queue", defaults.queue as u64) as usize,
        default_deadline_ms: parse("--deadline-ms", defaults.default_deadline_ms),
    };

    let server = Server::new(cfg, MeasureCache::from_env());
    let served = match &socket {
        Some(path) => {
            eprintln!("gcr-serve: listening on {path}");
            server.serve_unix(path)
        }
        None => server.serve_stdio(),
    };
    if let Err(e) = served {
        eprintln!("gcr-serve: transport failed: {e}");
    }
    // Drain the pool, then flush the store — orphaned jobs land too.
    if let Err(e) = server.finish() {
        eprintln!("gcr-serve: cache flush failed: {e}");
        std::process::exit(1);
    }
}
