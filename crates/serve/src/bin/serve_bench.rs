//! `serve_bench` — daemon latency, throughput, and shed-rate benchmark.
//!
//! Runs an in-process [`gcr_serve::Server`] on a scratch unix socket and
//! measures it from a real client:
//!
//! 1. **Latency/throughput**: a serial client issues warm `measure` and
//!    `health` requests; reports requests/sec and p50/p99 latency.
//! 2. **Overload**: a deliberately tiny server (1 worker, queue of 2) is
//!    flooded by concurrent clients issuing cold measurements; reports
//!    the shed rate (fraction answered `err overloaded`) — the bounded
//!    admission queue doing its job.
//!
//! Results merge into the `serve` section of `BENCH_sweep.json`
//! (`--json PATH` overrides), preserving the sweep sections written by
//! `sweep_bench`.
//!
//! Usage: `serve_bench [--requests N] [--clients N] [--json PATH]`

use gcr_bench::sweep::MeasureCache;
use gcr_cli::report::Json;
use gcr_serve::chaos::Client;
use gcr_serve::{Request, Server, ServerConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
    };
    let requests: usize = get("--requests").map(|v| v.parse().unwrap()).unwrap_or(400);
    let clients: usize = get("--clients").map(|v| v.parse().unwrap()).unwrap_or(8);
    let json_path = get("--json").unwrap_or_else(|| "BENCH_sweep.json".into());

    let dir = std::env::temp_dir().join(format!("gcr-serve-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");

    let (rps, p50_ns, p99_ns) = latency_phase(&dir, requests);
    println!(
        "latency: {requests} requests, {rps:.0} req/s, p50 {:.1} us, p99 {:.1} us",
        p50_ns as f64 / 1e3,
        p99_ns as f64 / 1e3
    );

    let (issued, ok, overloaded, timeout, shed_rate) = overload_phase(&dir, clients);
    println!(
        "overload: {issued} requests from {clients} clients, {ok} ok, \
         {overloaded} shed, {timeout} timed out, shed rate {shed_rate:.2}"
    );

    let serve = Json::O(vec![
        ("requests", Json::U(requests as u64)),
        ("requests_per_sec", Json::F(rps)),
        ("p50_ns", Json::U(p50_ns)),
        ("p99_ns", Json::U(p99_ns)),
        (
            "overload",
            Json::O(vec![
                ("workers", Json::U(1)),
                ("queue", Json::U(2)),
                ("clients", Json::U(clients as u64)),
                ("issued", Json::U(issued)),
                ("ok", Json::U(ok)),
                ("overloaded", Json::U(overloaded)),
                ("timeout", Json::U(timeout)),
                ("shed_rate", Json::F(shed_rate)),
            ]),
        ),
    ]);
    merge_serve_section(&json_path, serve);
    println!("serve section merged into {json_path}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Serial client against a default-sized server; returns
/// `(requests/sec, p50 ns, p99 ns)` over warm requests.
fn latency_phase(dir: &std::path::Path, requests: usize) -> (f64, u64, u64) {
    let socket = dir.join("latency.sock").to_string_lossy().into_owned();
    let server = Server::new(ServerConfig::default(), MeasureCache::new());
    let mut latencies: Vec<u64> = Vec::with_capacity(requests);
    let mut wall = Duration::ZERO;
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.serve_unix(&socket).expect("serve"));
        let mut client =
            Client::connect_with_retry(&socket, Duration::from_secs(10)).expect("connect");
        client.set_deadline(Duration::from_secs(30)).unwrap();
        let measure = Request::new("measure")
            .with("app", "ADI")
            .with("strategy", "fuse+group")
            .with("size", 12)
            .with("steps", 1);
        // Cold call fills the cache; everything timed after it is warm.
        assert!(client.call(&measure).expect("cold measure").is_ok());
        let started = Instant::now();
        for i in 0..requests {
            let req = if i % 2 == 0 { &measure } else { &Request::new("health") };
            let t = Instant::now();
            let resp = client.call(req).expect("warm request");
            latencies.push(t.elapsed().as_nanos() as u64);
            assert!(resp.is_ok(), "warm request failed: {}", resp.body);
        }
        wall = started.elapsed();
        assert!(client.call(&Request::new("shutdown")).expect("shutdown").is_ok());
        handle.join().expect("server thread");
    });
    server.finish().expect("flush");
    latencies.sort_unstable();
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];
    (requests as f64 / wall.as_secs_f64(), pct(0.50), pct(0.99))
}

/// Concurrent clients flooding a 1-worker, queue-of-2 server with cold
/// measurements on a tight deadline; returns
/// `(issued, ok, overloaded, timeout, shed_rate)`.
fn overload_phase(dir: &std::path::Path, clients: usize) -> (u64, u64, u64, u64, f64) {
    use gcr_serve::ErrCode;
    let socket = dir.join("overload.sock").to_string_lossy().into_owned();
    let server = Server::new(
        ServerConfig { workers: 1, queue: 2, default_deadline_ms: 2_000 },
        MeasureCache::new(),
    );
    let per_client = 20usize;
    let (ok, overloaded, timeout, other) =
        (AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0));
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.serve_unix(&socket).expect("serve"));
        let workers: Vec<_> = (0..clients)
            .map(|c| {
                let (socket, ok, overloaded, timeout, other) =
                    (&socket, &ok, &overloaded, &timeout, &other);
                scope.spawn(move || {
                    let mut client = Client::connect_with_retry(socket, Duration::from_secs(10))
                        .expect("connect");
                    client.set_deadline(Duration::from_secs(10)).unwrap();
                    for i in 0..per_client {
                        // Distinct sizes keep the cache cold, so every
                        // admitted request occupies the lone worker.
                        let req = Request::new("measure")
                            .with("app", "SP")
                            .with("strategy", "original")
                            .with("size", 8 + ((c * per_client + i) % 24) as i64)
                            .with("steps", 1)
                            .with("deadline_ms", 100);
                        match client.call(&req) {
                            Ok(resp) => match resp.code {
                                None => ok.fetch_add(1, Ordering::Relaxed),
                                Some(ErrCode::Overloaded) => {
                                    overloaded.fetch_add(1, Ordering::Relaxed)
                                }
                                Some(ErrCode::Timeout) => timeout.fetch_add(1, Ordering::Relaxed),
                                Some(_) => other.fetch_add(1, Ordering::Relaxed),
                            },
                            Err(_) => other.fetch_add(1, Ordering::Relaxed),
                        };
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("client thread");
        }
        let mut client =
            Client::connect_with_retry(&socket, Duration::from_secs(10)).expect("connect");
        client.set_deadline(Duration::from_secs(60)).unwrap();
        assert!(client.call(&Request::new("shutdown")).expect("shutdown").is_ok());
        handle.join().expect("server thread");
    });
    server.finish().expect("flush");
    let issued = (clients * per_client) as u64;
    let (ok, overloaded, timeout) =
        (ok.into_inner(), overloaded.into_inner(), timeout.into_inner());
    (issued, ok, overloaded, timeout, overloaded as f64 / issued as f64)
}

/// Rewrites `path` with its `serve` key replaced (other sections kept);
/// starts a fresh document when the file is absent or unparsable.
fn merge_serve_section(path: &str, serve: Json) {
    let base = std::fs::read_to_string(path).ok().and_then(|t| Json::parse(&t).ok());
    let json = match base {
        Some(Json::O(mut fields)) => {
            match fields.iter_mut().find(|(k, _)| *k == "serve") {
                Some(slot) => slot.1 = serve,
                None => fields.push(("serve", serve)),
            }
            Json::O(fields)
        }
        _ => Json::O(vec![("schema", Json::S("gcr-bench-sweep/v1".into())), ("serve", serve)]),
    };
    std::fs::write(path, json.render()).unwrap_or_else(|e| panic!("could not write {path}: {e}"));
}
