//! `gcr-chaos` — the fault-injection campaign harness.
//!
//! Spawns a real `gcr-serve` child process (faults armed via `GCR_FAULT`
//! in its environment, so injection cannot leak into this driver), runs
//! a seeded randomized client campaign against it, shuts it down, then
//! replays a fault-free campaign against the *same* persistent cache to
//! prove the store self-healed and every answer is byte-identical across
//! the fault boundary. Asserted throughout:
//!
//! * the server process never dies (faults fail requests, not the daemon);
//! * no request hangs past its deadline + slack;
//! * non-faulted requests are byte-deterministic within and across phases;
//! * a corrupted cache is quarantined and recomputed transparently.
//!
//! Prints a JSON verdict; exits non-zero (after writing
//! `chaos_repro.txt`) when any invariant broke. The whole run is
//! reproducible from `(--seed, --fault, --fault-seed)`.
//!
//! Usage: `gcr-chaos [--seed N] [--requests N] [--budget-ms N]
//! [--deadline-ms N] [--fault SPEC] [--fault-seed N] [--serve-bin PATH]
//! [--dir PATH]`

use gcr_cli::report::Json;
use gcr_serve::chaos::{
    fetch_report, run_campaign, send_shutdown, ChaosConfig, ChaosOutcome, Expectations,
};
use std::process::{Child, Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};

const DEFAULT_FAULT: &str =
    "panic_in_pass=0.08,slow_sim=0.05,torn_cache_write,truncated_frame=0.08,io_error=0.05";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
    };
    let num = |flag: &str, default: u64| -> u64 {
        get(flag)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("bad {flag} value {v:?}")))
            .unwrap_or(default)
    };
    let seed = num("--seed", 1);
    let requests = num("--requests", 120);
    let budget = Duration::from_millis(num("--budget-ms", 60_000));
    let deadline_ms = num("--deadline-ms", 10_000);
    let fault = get("--fault").unwrap_or_else(|| DEFAULT_FAULT.into());
    let fault_seed = num("--fault-seed", seed);
    let serve_bin = get("--serve-bin")
        .or_else(|| std::env::var("GCR_SERVE_BIN").ok())
        .unwrap_or_else(|| sibling("gcr-serve"));
    let dir = get("--dir")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join(format!("gcr-chaos-{}", std::process::id())));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let socket = dir.join("serve.sock").to_string_lossy().into_owned();
    let cache = dir.join("cache.txt").to_string_lossy().into_owned();

    let mut expected = Expectations::new();
    let mut violations: Vec<String> = Vec::new();

    // Phase A: faults armed. Strict only when the user disabled them all.
    let cfg_a = ChaosConfig {
        socket: socket.clone(),
        seed,
        requests,
        budget: budget / 2,
        deadline_ms,
        strict: fault.is_empty(),
    };
    let (outcome_a, report_a) = phase(
        &serve_bin,
        &socket,
        &cache,
        &fault,
        fault_seed,
        &cfg_a,
        &mut expected,
        &mut violations,
    );

    // Phase B: fault-free, same cache file, same workload seed. The store
    // may have been torn by phase A's flush; it must self-heal and every
    // answer must match phase A byte for byte.
    let cfg_b = ChaosConfig { budget: budget / 2, strict: true, ..cfg_a.clone() };
    let (outcome_b, report_b) =
        phase(&serve_bin, &socket, &cache, "", 0, &cfg_b, &mut expected, &mut violations);

    let passed = violations.is_empty() && outcome_a.passed() && outcome_b.passed();
    let verdict = Json::O(vec![
        ("schema", Json::S("gcr-chaos-verdict/v1".into())),
        ("seed", Json::U(seed)),
        ("fault", Json::S(fault.clone())),
        ("fault_seed", Json::U(fault_seed)),
        ("passed", Json::Bool(passed)),
        ("faulted", outcome_json(&outcome_a)),
        ("fault_free", outcome_json(&outcome_b)),
        ("harness_violations", Json::A(violations.iter().cloned().map(Json::S).collect())),
        ("server_report_faulted", parse_or_null(report_a)),
        ("server_report_fault_free", parse_or_null(report_b)),
    ]);
    println!("{}", verdict.render());

    if !passed {
        let mut repro = String::new();
        repro.push_str(&format!(
            "gcr-chaos failure\n\nreproduce with:\n  gcr-chaos --seed {seed} --requests {requests} \
             --deadline-ms {deadline_ms} --fault '{fault}' --fault-seed {fault_seed}\n\nviolations:\n"
        ));
        for v in violations.iter().chain(&outcome_a.violations).chain(&outcome_b.violations) {
            repro.push_str(&format!("  - {v}\n"));
        }
        let path = "chaos_repro.txt";
        if std::fs::write(path, &repro).is_ok() {
            eprintln!("gcr-chaos: reproducer written to {path}");
        }
        std::process::exit(1);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Runs one spawn → campaign → shutdown cycle, appending any
/// process-lifecycle violations.
#[allow(clippy::too_many_arguments)]
fn phase(
    serve_bin: &str,
    socket: &str,
    cache: &str,
    fault: &str,
    fault_seed: u64,
    cfg: &ChaosConfig,
    expected: &mut Expectations,
    violations: &mut Vec<String>,
) -> (ChaosOutcome, Option<String>) {
    let label = if fault.is_empty() { "fault-free" } else { "faulted" };
    let mut child = spawn_server(serve_bin, socket, cache, fault, fault_seed);
    let outcome = run_campaign(cfg, expected);
    let report = fetch_report(socket);
    // Liveness of the *process*: faults must only ever fail requests.
    if let Ok(Some(status)) = child.try_wait() {
        violations.push(format!("{label}: server process died during the campaign: {status}"));
        return (outcome, report);
    }
    if !send_shutdown(socket) {
        violations.push(format!("{label}: server refused the shutdown request"));
    }
    match wait_child(&mut child, Duration::from_secs(20)) {
        Some(status) if status.success() => {}
        Some(status) => violations.push(format!("{label}: server exited with {status}")),
        None => {
            violations.push(format!("{label}: server did not exit within 20s of shutdown"));
            let _ = child.kill();
            let _ = child.wait();
        }
    }
    (outcome, report)
}

fn spawn_server(bin: &str, socket: &str, cache: &str, fault: &str, fault_seed: u64) -> Child {
    let mut cmd = Command::new(bin);
    cmd.arg("--socket")
        .arg(socket)
        .env("GCR_MEASURE_CACHE", cache)
        .env_remove("GCR_FAULT")
        .env_remove("GCR_FAULT_SEED")
        .stdin(Stdio::null())
        .stdout(Stdio::null());
    if !fault.is_empty() {
        cmd.env("GCR_FAULT", fault)
            .env("GCR_FAULT_SEED", fault_seed.to_string())
            // Long enough to be a real stall, short enough for CI budgets.
            .env("GCR_FAULT_SLEEP_MS", "400");
    }
    cmd.spawn().unwrap_or_else(|e| panic!("could not spawn {bin}: {e}"))
}

fn wait_child(child: &mut Child, timeout: Duration) -> Option<ExitStatus> {
    let start = Instant::now();
    loop {
        match child.try_wait() {
            Ok(Some(status)) => return Some(status),
            Ok(None) if start.elapsed() > timeout => return None,
            Ok(None) => std::thread::sleep(Duration::from_millis(20)),
            Err(_) => return None,
        }
    }
}

/// `gcr-serve` sits next to this binary in the cargo target dir.
fn sibling(name: &str) -> String {
    std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join(name)))
        .map(|p| p.to_string_lossy().into_owned())
        .unwrap_or_else(|| name.to_string())
}

fn outcome_json(o: &ChaosOutcome) -> Json {
    let errors: Vec<(&'static str, Json)> =
        o.errors.iter().map(|(&k, &v)| (k, Json::U(v))).collect();
    Json::O(vec![
        ("issued", Json::U(o.issued)),
        ("ok", Json::U(o.ok)),
        ("errors", Json::O(errors)),
        ("reconnects", Json::U(o.reconnects)),
        ("determinism_checked", Json::U(o.determinism_checked)),
        ("violations", Json::A(o.violations.iter().cloned().map(Json::S).collect())),
    ])
}

fn parse_or_null(report: Option<String>) -> Json {
    report.and_then(|t| Json::parse(&t).ok()).unwrap_or(Json::Null)
}
