//! The daemon: request dispatch, admission control, isolation, shutdown.
//!
//! One [`Server`] owns a [`gcr_par::Pool`] (the execution substrate) and a
//! shared [`MeasureCache`] (the crash-safe measurement store). Requests
//! arrive as protocol frames over a transport ([`Server::serve_stdio`] or
//! [`Server::serve_unix`]); each one is parsed, admitted through the
//! bounded queue, and executed on a pool worker while the connection
//! thread waits with a deadline:
//!
//! * queue full → `err overloaded`, shed before any work starts;
//! * deadline or interpreter fuel exhausted → `err timeout` with the
//!   budget in the diagnostic body (the orphaned job finishes on its
//!   worker and is absorbed — its cache insert is kept);
//! * handler panic → `err panic`; the unwind is caught on the worker
//!   ([`gcr_par::isolate::run_isolated`]), the worker survives, and a
//!   poisoned cache lock is recovered on next touch, so one poisoned
//!   request cannot wedge the ones after it.
//!
//! `shutdown` flips the draining flag: new work is refused with
//! `err shutting-down`, transports stop accepting, in-flight connections
//! finish, and [`Server::finish`] joins the pool **before** flushing the
//! measurement cache — orphaned jobs complete first, so their results are
//! persisted too.

use crate::proto::{read_frame, write_frame, ErrCode, FrameIn, ProtoError, Request, Response};
use gcr_bench::sweep::{measure_strategy_report_cached, MeasureCache};
use gcr_cli::report::Json;
use gcr_core::checked::{apply_strategy_checked_traced, SafetyOptions};
use gcr_core::pipeline::Strategy;
use gcr_ir::GcrError;
use gcr_par::fault::{self, FaultPoint};
use gcr_par::{Pool, PoolFull};
use std::io::{ErrorKind, Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Request-size sanity bounds: the daemon is an optimization service, not
/// a batch simulator, so it refuses geometries that would pin a worker
/// for minutes. Larger experiments belong to the experiment binaries.
pub const MAX_SIZE: i64 = 512;
/// Upper bound on the `steps` header.
pub const MAX_STEPS: usize = 16;
/// Upper bound on the `deadline_ms` header.
pub const MAX_DEADLINE_MS: u64 = 600_000;
/// Upper bound on the `size` header of `predict`. Far beyond [`MAX_SIZE`]
/// because the symbolic model evaluates in microseconds regardless of the
/// size; only its one-time probe fits cost simulation time, and those run
/// at small fixed sizes.
pub const MAX_PREDICT_SIZE: i64 = 1_000_000_000;
/// Capacity ladder `predict` models, matching the `gcrc --static` sweep.
pub const PREDICT_CAPACITIES: [u64; 4] = [256, 1024, 4096, 16384];

/// Tunables fixed at construction.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Pool worker threads.
    pub workers: usize,
    /// Bounded admission-queue depth; the shed threshold.
    pub queue: usize,
    /// Deadline for requests that do not send `deadline_ms`.
    pub default_deadline_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig { workers: 2, queue: 8, default_deadline_ms: 30_000 }
    }
}

/// A running optimization service (transport-independent).
pub struct Server {
    cfg: ServerConfig,
    pool: Pool,
    cache: Arc<MeasureCache>,
    started: Instant,
    shutting_down: AtomicBool,
    requests: AtomicU64,
    ok: AtomicU64,
    errors: [AtomicU64; ErrCode::ALL.len()],
    dropped_connections: AtomicU64,
}

fn code_index(code: ErrCode) -> usize {
    ErrCode::ALL.iter().position(|&c| c == code).expect("catalogued code")
}

impl Server {
    /// A server over the given cache (usually [`MeasureCache::from_env`],
    /// so `GCR_MEASURE_CACHE` selects the persistent store).
    pub fn new(cfg: ServerConfig, cache: MeasureCache) -> Server {
        Server {
            pool: Pool::new(cfg.workers, cfg.queue),
            cfg,
            cache: Arc::new(cache),
            started: Instant::now(),
            shutting_down: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            errors: Default::default(),
            dropped_connections: AtomicU64::new(0),
        }
    }

    /// Whether a `shutdown` request has been accepted.
    pub fn shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::Relaxed)
    }

    /// The shared measurement cache.
    pub fn cache(&self) -> &MeasureCache {
        &self.cache
    }

    /// Drains the pool (orphaned jobs finish), then flushes the cache.
    /// The flush order matters: a timed-out measurement that completes
    /// during the drain still lands in the persisted store.
    pub fn finish(self) -> std::io::Result<()> {
        let Server { pool, cache, .. } = self;
        pool.drain();
        cache.save()
    }

    // -- dispatch -----------------------------------------------------------

    /// Handles one raw frame payload and produces the response frame.
    pub fn handle(&self, payload: &[u8]) -> Response {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let req = match Request::parse(payload) {
            Ok(req) => req,
            Err(ProtoError::WrongVersion(v)) => {
                return self.err(
                    ErrCode::UnsupportedVersion,
                    format!("this server speaks {}, not {v}", crate::proto::PROTO),
                    vec![("supported", Json::S(crate::proto::PROTO.into()))],
                )
            }
            Err(e) => return self.err(ErrCode::BadRequest, e.to_string(), vec![]),
        };
        // Introspection verbs stay available while draining; work does not.
        let draining = self.shutting_down();
        match req.verb.as_str() {
            "health" => self.health(),
            "report" => self.report(),
            "shutdown" => {
                self.shutting_down.store(true, Ordering::Relaxed);
                self.ok_resp(Json::O(vec![("draining", Json::Bool(true))]))
            }
            _ if draining => {
                self.err(ErrCode::ShuttingDown, "server is draining; no new work".into(), vec![])
            }
            "optimize" => self.optimize(&req),
            "measure" => self.measure(&req),
            "predict" => self.predict(&req),
            other => self.err(ErrCode::BadRequest, format!("unknown verb {other:?}"), vec![]),
        }
    }

    fn ok_resp(&self, body: Json) -> Response {
        self.ok.fetch_add(1, Ordering::Relaxed);
        Response { code: None, body: body.render() }
    }

    fn err(&self, code: ErrCode, message: String, extra: Vec<(&'static str, Json)>) -> Response {
        self.errors[code_index(code)].fetch_add(1, Ordering::Relaxed);
        let mut fields =
            vec![("error", Json::S(code.name().into())), ("message", Json::S(message))];
        fields.extend(extra);
        Response { code: Some(code), body: Json::O(fields).render() }
    }

    // -- verbs --------------------------------------------------------------

    fn health(&self) -> Response {
        self.ok_resp(Json::O(vec![
            ("status", Json::S(if self.shutting_down() { "draining" } else { "ok" }.into())),
            ("uptime_ms", Json::U(self.started.elapsed().as_millis() as u64)),
            ("workers", Json::U(self.cfg.workers as u64)),
            ("queue", Json::U(self.cfg.queue as u64)),
        ]))
    }

    fn report(&self) -> Response {
        let cache = self.cache.counters();
        let errors: Vec<(&'static str, Json)> = ErrCode::ALL
            .iter()
            .map(|&c| (c.name(), Json::U(self.errors[code_index(c)].load(Ordering::Relaxed))))
            .collect();
        self.ok_resp(Json::O(vec![
            ("schema", Json::S("gcr-serve-report/v1".into())),
            ("uptime_ms", Json::U(self.started.elapsed().as_millis() as u64)),
            ("requests", Json::U(self.requests.load(Ordering::Relaxed))),
            ("ok", Json::U(self.ok.load(Ordering::Relaxed))),
            ("errors", Json::O(errors)),
            ("isolated_panics", Json::U(self.pool.isolated_panics())),
            ("dropped_connections", Json::U(self.dropped_connections.load(Ordering::Relaxed))),
            ("faults_injected", Json::U(fault::injected_total())),
            (
                "cache",
                Json::O(vec![
                    ("hits", Json::U(cache.hits)),
                    ("misses", Json::U(cache.misses)),
                    ("evictions", Json::U(cache.evictions)),
                    ("corrupt", Json::U(cache.corrupt)),
                    ("poisoned", Json::U(cache.poisoned)),
                ]),
            ),
        ]))
    }

    fn optimize(&self, req: &Request) -> Response {
        let strategy = match self.strategy_of(req) {
            Ok(s) => s,
            Err(resp) => return resp,
        };
        let deadline = match self.deadline_of(req) {
            Ok(d) => d,
            Err(resp) => return resp,
        };
        if req.body.trim().is_empty() {
            return self.err(
                ErrCode::BadRequest,
                "optimize needs the program source as the request body".into(),
                vec![],
            );
        }
        let source = req.body.clone();
        let result = self.run_pooled(deadline, move || -> Result<Json, GcrError> {
            let prog = gcr_frontend::parse(&source)?;
            let mut tracer = gcr_core::Tracer::enabled();
            let opt = apply_strategy_checked_traced(
                &prog,
                strategy,
                &SafetyOptions::default(),
                &mut tracer,
            )?;
            let diagnostics = Json::A(opt.robustness.describe().into_iter().map(Json::S).collect());
            Ok(Json::O(vec![
                ("requested", Json::S(strategy.label())),
                ("delivered", Json::S(opt.robustness.strategy.clone())),
                ("program", Json::S(gcr_ir::print::print_program(&opt.program))),
                ("diagnostics", diagnostics),
            ]))
        });
        match result {
            Ok(Ok(body)) => self.ok_resp(body),
            Ok(Err(e)) => self.pipeline_err(e),
            Err(resp) => resp,
        }
    }

    fn measure(&self, req: &Request) -> Response {
        let Some(app_name) = req.header("app").map(str::to_string) else {
            return self.err(ErrCode::BadRequest, "measure needs an `app` header".into(), vec![]);
        };
        if !gcr_apps::evaluation_apps().iter().any(|a| a.name.eq_ignore_ascii_case(&app_name)) {
            let known: Vec<Json> =
                gcr_apps::evaluation_apps().iter().map(|a| Json::S(a.name.into())).collect();
            return self.err(
                ErrCode::BadRequest,
                format!("unknown app {app_name:?}"),
                vec![("known", Json::A(known))],
            );
        }
        let strategy = match self.strategy_of(req) {
            Ok(s) => s,
            Err(resp) => return resp,
        };
        let deadline = match self.deadline_of(req) {
            Ok(d) => d,
            Err(resp) => return resp,
        };
        let size = match self.header_int(req, "size", 12, 8, MAX_SIZE) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        let steps = match self.header_int(req, "steps", 1, 1, MAX_STEPS as i64) {
            Ok(v) => v as usize,
            Err(resp) => return resp,
        };
        let hier = match self.hierarchy_of(req) {
            Ok(h) => h,
            Err(resp) => return resp,
        };
        let cache = Arc::clone(&self.cache);
        let result = self.run_pooled(deadline, move || -> Result<Json, GcrError> {
            let apps = gcr_apps::evaluation_apps();
            let app = apps
                .iter()
                .find(|a| a.name.eq_ignore_ascii_case(&app_name))
                .expect("validated above");
            let (m, _report, diagnostics) =
                measure_strategy_report_cached(&cache, "gcr-serve", app, strategy, size, steps)?;
            let mut body = vec![
                ("app", Json::S(app.name.into())),
                ("strategy", Json::S(m.label.clone())),
                ("size", Json::I(size)),
                ("steps", Json::U(steps as u64)),
                ("cycles", Json::F(m.cycles)),
                ("flops", Json::U(m.stats.flops)),
                ("l1", Json::U(m.misses.l1)),
                ("l2", Json::U(m.misses.l2)),
                ("tlb", Json::U(m.misses.tlb)),
                ("memory_traffic", Json::U(m.misses.memory_traffic)),
                ("diagnostics", Json::A(diagnostics.into_iter().map(Json::S).collect())),
            ];
            if let Some(spec) = hier {
                // Hierarchy measurements are descriptor-parameterized and
                // skip the measurement cache (its on-disk key format is
                // strategy x size x steps only).
                let (prog, bind) = (app.build)(size);
                let mut tracer = gcr_core::Tracer::disabled();
                let opt = apply_strategy_checked_traced(
                    &prog,
                    strategy,
                    &SafetyOptions::default(),
                    &mut tracer,
                )?;
                let layout = opt.layout(&bind);
                let run = gcr_cache::measure_hierarchy(
                    &opt.program,
                    bind,
                    layout,
                    gcr_exec::ExecEngine::default(),
                    steps,
                    gcr_bench::MEASURE_FUEL,
                    &spec,
                )?;
                body.push(("hierarchy", hierarchy_body(&run)));
            }
            Ok(Json::O(body))
        });
        match result {
            Ok(Ok(body)) => self.ok_resp(body),
            Ok(Err(e)) => self.pipeline_err(e),
            Err(resp) => resp,
        }
    }

    /// `predict`: evaluate the analytic reuse model of [`gcr_static`] at
    /// one size. Sizes range up to [`MAX_PREDICT_SIZE`] — three orders of
    /// magnitude past what `measure` will simulate — because evaluation
    /// is closed-form; the worker only spends simulation time on the
    /// model's small fixed-size probe fits. Programs the model cannot
    /// analyze fall back to one direct capacity-sweep simulation when
    /// `fallback=sim` (the default) and the size is within [`MAX_SIZE`];
    /// otherwise the answer is `err not-analyzable`.
    fn predict(&self, req: &Request) -> Response {
        let strategy = match self.strategy_of(req) {
            Ok(s) => s,
            Err(resp) => return resp,
        };
        let deadline = match self.deadline_of(req) {
            Ok(d) => d,
            Err(resp) => return resp,
        };
        if req.body.trim().is_empty() {
            return self.err(
                ErrCode::BadRequest,
                "predict needs the program source as the request body".into(),
                vec![],
            );
        }
        let size = match self.header_int(req, "size", 1_000_000, 8, MAX_PREDICT_SIZE) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        let steps = match self.header_int(req, "steps", 1, 1, MAX_STEPS as i64) {
            Ok(v) => v as usize,
            Err(resp) => return resp,
        };
        let fallback = match req.header("fallback").unwrap_or("sim") {
            "sim" => true,
            "none" => false,
            other => {
                return self.err(
                    ErrCode::BadRequest,
                    format!("bad fallback {other:?} (expected `sim` or `none`)"),
                    vec![],
                )
            }
        };
        let hier = match self.hierarchy_of(req) {
            Ok(h) => h,
            Err(resp) => return resp,
        };
        if hier.is_some() && size > MAX_SIZE {
            return self.err(
                ErrCode::BadRequest,
                format!(
                    "hierarchy descriptors are answered by direct simulation, \
                     which is bounded at size {MAX_SIZE} (requested {size})"
                ),
                vec![],
            );
        }
        let source = req.body.clone();
        let result = self.run_pooled(deadline, move || -> Result<Json, gcr_static::StaticError> {
            let prog = gcr_frontend::parse(&source).map_err(GcrError::from)?;
            let mut tracer = gcr_core::Tracer::disabled();
            let opt = apply_strategy_checked_traced(
                &prog,
                strategy,
                &SafetyOptions::default(),
                &mut tracer,
            )?;
            if let Some(hspec) = hier {
                // No symbolic model covers set-associative multi-level
                // hierarchies; the descriptor is answered by one exact
                // simulation at the requested (bounded) size.
                let bind = gcr_ir::ParamBinding::new(vec![size; opt.program.params.len()]);
                let layout = opt.layout(&bind);
                let run = gcr_cache::measure_hierarchy(
                    &opt.program,
                    bind,
                    layout,
                    gcr_exec::ExecEngine::default(),
                    steps,
                    gcr_static::DEFAULT_PROBE_FUEL,
                    &hspec,
                )
                .map_err(gcr_static::StaticError::Gcr)?;
                return Ok(Json::O(vec![
                    ("size", Json::I(size)),
                    ("steps", Json::U(steps as u64)),
                    ("method", Json::S("simulation".into())),
                    ("hierarchy", hierarchy_body(&run)),
                ]));
            }
            let spec = gcr_static::SweepSpec::new(32, PREDICT_CAPACITIES.to_vec(), steps);
            let analysis = gcr_static::Analyzer::analyze_with(
                &opt.program,
                spec,
                gcr_exec::ExecEngine::default(),
                gcr_static::DEFAULT_PROBE_FUEL,
                |b| opt.layout(b),
            )
            .and_then(|a| {
                let p = a.predict(size)?;
                Ok(prediction_body(&opt.program, a.model(), &p))
            });
            match analysis {
                Err(gcr_static::StaticError::NotAnalyzable { reason })
                    if fallback && size <= MAX_SIZE =>
                {
                    // One direct sweep simulation stands in for the
                    // missing model: exact, but only at this size.
                    let bind = gcr_ir::ParamBinding::new(vec![size; opt.program.params.len()]);
                    let layout = opt.layout(&bind);
                    let mut m = gcr_exec::Machine::with_layout(&opt.program, bind, layout);
                    let mut sink = gcr_cache::CapacitySweepSink::new(32, &PREDICT_CAPACITIES);
                    m.run_steps_guarded(&mut sink, steps, gcr_static::DEFAULT_PROBE_FUEL)
                        .map_err(gcr_static::StaticError::Gcr)?;
                    let caps: Vec<Json> = sink
                        .miss_counts()
                        .into_iter()
                        .map(|(cap, misses)| {
                            Json::O(vec![
                                ("capacity_bytes", Json::U(cap)),
                                ("misses", Json::U(misses)),
                            ])
                        })
                        .collect();
                    Ok(Json::O(vec![
                        ("size", Json::I(size)),
                        ("steps", Json::U(steps as u64)),
                        ("line_bytes", Json::U(32)),
                        ("method", Json::S("simulation".into())),
                        ("class", Json::S("exact".into())),
                        ("tolerance", Json::F(0.0)),
                        ("fallback_reason", Json::S(reason)),
                        ("refs", Json::U(sink.refs())),
                        ("capacities", Json::A(caps)),
                    ]))
                }
                other => other,
            }
        });
        match result {
            Ok(Ok(body)) => self.ok_resp(body),
            Ok(Err(gcr_static::StaticError::NotAnalyzable { reason })) => self.err(
                ErrCode::NotAnalyzable,
                reason,
                vec![("size", Json::I(size)), ("max_sim_size", Json::I(MAX_SIZE))],
            ),
            Ok(Err(gcr_static::StaticError::Gcr(e))) => self.pipeline_err(e),
            Err(resp) => resp,
        }
    }

    /// Maps a pipeline error to a response code: fuel exhaustion is the
    /// request blowing its compute budget (`timeout`), a parse error is
    /// the client's fault (`bad-request`), everything else is `internal`.
    fn pipeline_err(&self, e: GcrError) -> Response {
        match e {
            GcrError::BudgetExceeded { resource, limit } => self.err(
                ErrCode::Timeout,
                format!("budget exceeded: {resource} limit {limit}"),
                vec![("budget", Json::S(resource.to_string())), ("limit", Json::U(limit))],
            ),
            GcrError::Parse { .. } | GcrError::Usage(_) => {
                self.err(ErrCode::BadRequest, e.to_string(), vec![])
            }
            e => self.err(ErrCode::Internal, e.to_string(), vec![]),
        }
    }

    // -- execution ----------------------------------------------------------

    /// Submits `job` through the admission queue and waits for its result
    /// up to `deadline`. Every failure mode is already converted to a
    /// counted error response: shed (`overloaded`), expired
    /// (`timeout` + diagnostic), or panicked (`panic`).
    fn run_pooled<T: Send + 'static>(
        &self,
        deadline: Duration,
        job: impl FnOnce() -> T + Send + 'static,
    ) -> Result<T, Response> {
        let (tx, rx) = channel();
        let started = Instant::now();
        // If the job panics on the worker, `tx` is dropped without a send
        // and the wait below sees `Disconnected` — that is the panic signal.
        self.pool
            .try_submit(move || {
                let _ = tx.send(job());
            })
            .map_err(|PoolFull| {
                self.err(
                    ErrCode::Overloaded,
                    "admission queue full; request shed".into(),
                    vec![("queue", Json::U(self.cfg.queue as u64))],
                )
            })?;
        match rx.recv_timeout(deadline) {
            Ok(v) => Ok(v),
            Err(RecvTimeoutError::Timeout) => Err(self.err(
                ErrCode::Timeout,
                format!("deadline of {} ms expired", deadline.as_millis()),
                vec![
                    ("deadline_ms", Json::U(deadline.as_millis() as u64)),
                    ("elapsed_ms", Json::U(started.elapsed().as_millis() as u64)),
                ],
            )),
            Err(RecvTimeoutError::Disconnected) => Err(self.err(
                ErrCode::Panic,
                "request handler panicked; the panic was isolated".into(),
                vec![],
            )),
        }
    }

    // -- header parsing -----------------------------------------------------

    fn strategy_of(&self, req: &Request) -> Result<Strategy, Response> {
        let name = req.header("strategy").unwrap_or("fuse+group");
        Strategy::from_name(name).ok_or_else(|| {
            self.err(ErrCode::BadRequest, format!("unknown strategy {name:?}"), vec![])
        })
    }

    fn deadline_of(&self, req: &Request) -> Result<Duration, Response> {
        let ms = match req.header("deadline_ms") {
            None => self.cfg.default_deadline_ms,
            Some(v) => v.parse::<u64>().map_err(|_| {
                self.err(ErrCode::BadRequest, format!("bad deadline_ms {v:?}"), vec![])
            })?,
        };
        Ok(Duration::from_millis(ms.clamp(1, MAX_DEADLINE_MS)))
    }

    /// Parses the optional `hierarchy` header into a validated descriptor.
    fn hierarchy_of(&self, req: &Request) -> Result<Option<gcr_cache::HierarchySpec>, Response> {
        match req.header("hierarchy") {
            None => Ok(None),
            Some(desc) => gcr_cache::HierarchySpec::parse(desc).map(Some).map_err(|why| {
                self.err(ErrCode::BadRequest, format!("bad hierarchy descriptor: {why}"), vec![])
            }),
        }
    }

    fn header_int(
        &self,
        req: &Request,
        key: &str,
        default: i64,
        lo: i64,
        hi: i64,
    ) -> Result<i64, Response> {
        let v = match req.header(key) {
            None => return Ok(default),
            Some(v) => v
                .parse::<i64>()
                .map_err(|_| self.err(ErrCode::BadRequest, format!("bad {key} {v:?}"), vec![]))?,
        };
        if !(lo..=hi).contains(&v) {
            return Err(self.err(
                ErrCode::BadRequest,
                format!("{key}={v} outside [{lo}, {hi}]"),
                vec![],
            ));
        }
        Ok(v)
    }

    // -- transports ---------------------------------------------------------

    /// Serves one framed connection until EOF, a torn frame, or shutdown.
    /// Transport errors end the connection, never the server.
    pub fn serve_connection(&self, r: &mut impl Read, w: &mut impl Write) -> std::io::Result<()> {
        loop {
            match read_frame(r) {
                Ok(FrameIn::Frame(payload)) => {
                    let resp = self.handle(&payload);
                    if let Err(e) = self.write_response(w, &resp) {
                        self.dropped_connections.fetch_add(1, Ordering::Relaxed);
                        eprintln!("gcr-serve: connection dropped: {e}");
                        return Ok(());
                    }
                    if self.shutting_down() {
                        return Ok(());
                    }
                }
                Ok(FrameIn::Eof) => return Ok(()),
                Ok(FrameIn::Idle) => {
                    if self.shutting_down() {
                        return Ok(());
                    }
                }
                Err(e) => {
                    // A torn inbound frame desynchronizes the stream; answer
                    // best-effort and drop the connection.
                    let resp = self.err(ErrCode::BadRequest, e.to_string(), vec![]);
                    let _ = self.write_response(w, &resp);
                    self.dropped_connections.fetch_add(1, Ordering::Relaxed);
                    return Ok(());
                }
            }
        }
    }

    /// Writes a response frame. `GCR_FAULT=truncated_frame` chaos hook:
    /// when it fires, half the frame is written and the connection dies —
    /// the client-visible signature of a peer crashing mid-send.
    fn write_response(&self, w: &mut impl Write, resp: &Response) -> std::io::Result<()> {
        let payload = resp.encode();
        if fault::fires(FaultPoint::TruncatedFrame) {
            w.write_all(&(payload.len() as u32).to_le_bytes())?;
            w.write_all(&payload[..payload.len() / 2])?;
            w.flush()?;
            return Err(std::io::Error::other("injected fault: truncated_frame"));
        }
        write_frame(w, &payload)
    }

    /// Serves frames on stdin/stdout — one connection, then drain + flush
    /// via [`Server::finish`] at the call site.
    pub fn serve_stdio(&self) -> std::io::Result<()> {
        let mut r = std::io::stdin().lock();
        let mut w = std::io::stdout().lock();
        self.serve_connection(&mut r, &mut w)
    }

    /// Binds a unix socket and serves each connection on its own thread
    /// until a `shutdown` request drains the server. In-flight
    /// connections are joined before this returns.
    pub fn serve_unix(&self, path: &str) -> std::io::Result<()> {
        use std::os::unix::net::UnixListener;
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        std::thread::scope(|scope| {
            while !self.shutting_down() {
                match listener.accept() {
                    Ok((stream, _)) => {
                        // The read timeout turns an idle connection into
                        // periodic `FrameIn::Idle` polls of the drain flag.
                        let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
                        scope.spawn(move || {
                            let (mut r, mut w) = (&stream, &stream);
                            let _ = self.serve_connection(&mut r, &mut w);
                            let _ = stream.shutdown(std::net::Shutdown::Both);
                        });
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) => {
                        eprintln!("gcr-serve: accept failed: {e}");
                        std::thread::sleep(Duration::from_millis(50));
                    }
                }
            }
        });
        let _ = std::fs::remove_file(path);
        Ok(())
    }
}

/// Counters can exceed `u64` at predicted sizes (a 2-deep nest at
/// N = 10⁹ touches 10¹⁸ elements); JSON stays exact while the value fits
/// an integer and degrades to a float beyond that.
fn big_json(v: u128) -> Json {
    if v <= u64::MAX as u128 {
        Json::U(v as u64)
    } else {
        Json::F(v as f64)
    }
}

/// The `ok` body of a `predict` answered by the symbolic model. Field
/// names match the `prediction` section of `gcr-report/v1` so clients
/// parse both with one schema.
/// The `hierarchy` object of `measure`/`predict` bodies. Field names
/// match the `hierarchy` section of `gcr-report/v1` so clients read one
/// schema.
fn hierarchy_body(run: &gcr_cache::HierarchyRun) -> Json {
    Json::O(vec![
        ("spec", Json::S(run.spec.clone())),
        ("line_bytes", Json::U(run.line)),
        ("refs", Json::U(run.counts.refs)),
        (
            "levels",
            Json::A(
                run.configs
                    .iter()
                    .zip(&run.counts.levels)
                    .map(|(cfg, c)| {
                        Json::O(vec![
                            ("size", Json::U(cfg.size as u64)),
                            ("line", Json::U(cfg.line as u64)),
                            ("assoc", Json::U(cfg.assoc as u64)),
                            ("hits", Json::U(c.hits)),
                            ("misses", Json::U(c.misses)),
                            ("writebacks", Json::U(c.writebacks)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("prefetches", Json::U(run.counts.prefetches)),
        ("memory_fills", Json::U(run.counts.memory_fills)),
        ("memory_writebacks", Json::U(run.counts.memory_writebacks)),
        ("memory_traffic", Json::U(run.counts.memory_traffic)),
        (
            "sweep",
            Json::A(
                run.sweep
                    .iter()
                    .map(|b| {
                        Json::O(vec![
                            ("capacity", Json::U(b.capacity)),
                            ("fa_misses", Json::U(b.fa_misses)),
                            ("assoc_misses", Json::U(b.assoc_misses)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn prediction_body(
    prog: &gcr_ir::Program,
    m: &gcr_static::Model,
    p: &gcr_static::Prediction,
) -> Json {
    let var = prog.params.first().map_or("N", |d| d.name.as_str());
    let caps: Vec<Json> = p
        .capacities
        .iter()
        .enumerate()
        .map(|(ci, cp)| {
            let per_array: Vec<Json> = cp
                .per_array
                .iter()
                .enumerate()
                .map(|(ai, &misses)| {
                    Json::O(vec![
                        ("name", Json::S(prog.arrays[ai].name.clone())),
                        ("misses", big_json(misses)),
                    ])
                })
                .collect();
            Json::O(vec![
                ("capacity_bytes", Json::U(cp.capacity)),
                ("misses", big_json(cp.misses)),
                ("model", Json::S(m.capacities[ci].global.render_at(var, p.size))),
                ("per_array", Json::A(per_array)),
            ])
        })
        .collect();
    Json::O(vec![
        ("size", Json::I(p.size)),
        ("steps", Json::U(p.steps as u64)),
        ("line_bytes", Json::U(m.spec.line)),
        ("method", Json::S(p.method.name().into())),
        ("class", Json::S(p.class.name().into())),
        ("tolerance", Json::F(p.tolerance)),
        ("degree", Json::U(m.degree as u64)),
        ("period", Json::I(m.period)),
        ("regime_base", Json::I(m.base)),
        ("probe_sims", Json::U(m.probe_sims as u64)),
        ("refs", big_json(p.refs)),
        ("capacities", Json::A(caps)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> Server {
        Server::new(ServerConfig::default(), MeasureCache::new())
    }

    fn handle(s: &Server, req: &Request) -> Response {
        s.handle(&req.encode())
    }

    const DEMO: &str = "
program demo
param N
array A[N], B[N]
for i = 1, N {
  A[i] = f(A[i])
}
for i = 1, N {
  B[i] = g(A[i], B[i])
}
";

    #[test]
    fn health_report_and_unknown_verbs() {
        let s = server();
        let h = handle(&s, &Request::new("health"));
        assert!(h.is_ok(), "{h:?}");
        assert!(h.body.contains("\"status\": \"ok\""), "{}", h.body);
        let r = handle(&s, &Request::new("report"));
        assert!(r.body.contains("\"schema\": \"gcr-serve-report/v1\""), "{}", r.body);
        let e = handle(&s, &Request::new("frobnicate"));
        assert_eq!(e.code, Some(ErrCode::BadRequest));
        let v = s.handle(b"gcr-serve/v9 health\n\n");
        assert_eq!(v.code, Some(ErrCode::UnsupportedVersion));
    }

    #[test]
    fn optimize_returns_program_and_validates_input() {
        let s = server();
        let ok = handle(&s, &Request::new("optimize").with("strategy", "fuse").with_body(DEMO));
        assert!(ok.is_ok(), "{}", ok.body);
        assert!(ok.body.contains("\"delivered\""), "{}", ok.body);
        assert!(ok.body.contains("program demo"), "{}", ok.body);
        // Determinism: the same request must produce byte-identical output.
        let again = handle(&s, &Request::new("optimize").with("strategy", "fuse").with_body(DEMO));
        assert_eq!(ok, again);

        let bad = handle(&s, &Request::new("optimize").with("strategy", "fuse"));
        assert_eq!(bad.code, Some(ErrCode::BadRequest), "empty body");
        let bad = handle(&s, &Request::new("optimize").with("strategy", "wat").with_body(DEMO));
        assert_eq!(bad.code, Some(ErrCode::BadRequest), "unknown strategy");
        let bad = handle(&s, &Request::new("optimize").with_body("not a program"));
        assert_eq!(bad.code, Some(ErrCode::BadRequest), "parse error: {}", bad.body);
    }

    #[test]
    fn measure_hits_cache_on_repeat() {
        let s = server();
        let req = Request::new("measure")
            .with("app", "ADI")
            .with("strategy", "original")
            .with("size", 10)
            .with("steps", 1);
        let a = handle(&s, &req);
        assert!(a.is_ok(), "{}", a.body);
        assert!(a.body.contains("\"l1\""), "{}", a.body);
        let b = handle(&s, &req);
        assert_eq!(a, b, "measurement must be deterministic");
        let c = s.cache.counters();
        assert_eq!((c.hits, c.misses), (1, 1), "second request must hit the cache");

        let bad = handle(&s, &Request::new("measure").with("app", "nope"));
        assert_eq!(bad.code, Some(ErrCode::BadRequest));
        let bad = handle(&s, &Request::new("measure").with("app", "ADI").with("size", 100_000));
        assert_eq!(bad.code, Some(ErrCode::BadRequest), "size bound");
    }

    #[test]
    fn measure_accepts_hierarchy_descriptors() {
        let s = server();
        let req = Request::new("measure")
            .with("app", "ADI")
            .with("strategy", "original")
            .with("size", 10)
            .with("steps", 1)
            .with("hierarchy", "l1=512/32/4,l2=4K/128/fa,prefetch=next-line");
        let a = handle(&s, &req);
        assert!(a.is_ok(), "{}", a.body);
        assert!(a.body.contains("\"hierarchy\""), "{}", a.body);
        assert!(
            a.body.contains(
                "\"spec\": \"l1=512/32/4,l2=4K/128/fa,policy=inclusive,prefetch=next-line\""
            ),
            "{}",
            a.body
        );
        assert!(a.body.contains("\"assoc_misses\""), "{}", a.body);
        let b = handle(&s, &req);
        assert_eq!(a, b, "hierarchy measurement must be deterministic");

        let bad =
            handle(&s, &Request::new("measure").with("app", "ADI").with("hierarchy", "l1=8K/33/4"));
        assert_eq!(bad.code, Some(ErrCode::BadRequest), "bad descriptor: {}", bad.body);
    }

    #[test]
    fn predict_with_hierarchy_simulates_within_bounds() {
        let s = server();
        let req = Request::new("predict")
            .with("strategy", "fuse")
            .with("size", 48)
            .with("hierarchy", "l1=512/32/2,l2=4K/32/fa,policy=exclusive")
            .with_body(DEMO);
        let a = handle(&s, &req);
        assert!(a.is_ok(), "{}", a.body);
        assert!(a.body.contains("\"method\": \"simulation\""), "{}", a.body);
        assert!(a.body.contains("\"fa_misses\""), "{}", a.body);

        // Descriptors force simulation, so the predict size bound tightens
        // to the simulation bound.
        let far = handle(
            &s,
            &Request::new("predict")
                .with("size", 1_000_000i64)
                .with("hierarchy", "l1=512/32/2")
                .with_body(DEMO),
        );
        assert_eq!(far.code, Some(ErrCode::BadRequest), "{}", far.body);
    }

    #[test]
    fn predict_answers_at_sizes_simulation_refuses() {
        let s = server();
        // A billion elements: far beyond MAX_SIZE, microseconds for the
        // symbolic model.
        let req = Request::new("predict")
            .with("strategy", "fuse")
            .with("size", 1_000_000_000i64)
            .with_body(DEMO);
        let a = handle(&s, &req);
        assert!(a.is_ok(), "{}", a.body);
        assert!(a.body.contains("\"method\": \"polynomial\""), "{}", a.body);
        assert!(a.body.contains("\"class\": \"exact\""), "{}", a.body);
        assert!(a.body.contains("\"model\""), "{}", a.body);
        // Determinism: probes and fitting are replayable.
        let b = handle(&s, &req);
        assert_eq!(a, b, "prediction must be deterministic");

        let bad = handle(&s, &Request::new("predict").with("strategy", "fuse"));
        assert_eq!(bad.code, Some(ErrCode::BadRequest), "empty body");
        let bad =
            handle(&s, &Request::new("predict").with("size", MAX_PREDICT_SIZE + 1).with_body(DEMO));
        assert_eq!(bad.code, Some(ErrCode::BadRequest), "size bound");
        let bad = handle(&s, &Request::new("predict").with("fallback", "maybe").with_body(DEMO));
        assert_eq!(bad.code, Some(ErrCode::BadRequest), "bad fallback value");
    }

    #[test]
    fn unanalyzable_predict_falls_back_or_errors() {
        let s = server();
        // Two size parameters defeat the univariate model.
        let multi = "
program multi
param N, M
array A[N], B[M]
for i = 1, N {
  A[i] = f(A[i])
}
for j = 1, M {
  B[j] = g(B[j])
}
";
        // Small size + default fallback: answered by direct simulation.
        let ok = handle(&s, &Request::new("predict").with("size", 64).with_body(multi));
        assert!(ok.is_ok(), "{}", ok.body);
        assert!(ok.body.contains("\"method\": \"simulation\""), "{}", ok.body);
        assert!(ok.body.contains("\"fallback_reason\""), "{}", ok.body);

        // Fallback disabled: structured not-analyzable error.
        let err = handle(
            &s,
            &Request::new("predict").with("size", 64).with("fallback", "none").with_body(multi),
        );
        assert_eq!(err.code, Some(ErrCode::NotAnalyzable), "{}", err.body);
        assert!(err.body.contains("\"error\": \"not-analyzable\""), "{}", err.body);

        // Size beyond the simulation bound: fallback is impossible even
        // when allowed.
        let err = handle(&s, &Request::new("predict").with("size", 1_000_000).with_body(multi));
        assert_eq!(err.code, Some(ErrCode::NotAnalyzable), "{}", err.body);
        assert!(err.body.contains("\"max_sim_size\""), "{}", err.body);
    }

    #[test]
    fn deadline_expiry_is_a_structured_timeout() {
        let s = server();
        let r: Result<(), Response> = s.run_pooled(Duration::from_millis(20), || {
            std::thread::sleep(Duration::from_millis(400));
        });
        let resp = r.expect_err("must time out");
        assert_eq!(resp.code, Some(ErrCode::Timeout));
        assert!(resp.body.contains("\"deadline_ms\": 20"), "{}", resp.body);
        assert!(resp.body.contains("\"elapsed_ms\""), "{}", resp.body);
    }

    #[test]
    fn panicking_job_reports_panic_and_server_survives() {
        let s = server();
        let r: Result<(), Response> =
            s.run_pooled(Duration::from_secs(5), || panic!("request dies"));
        assert_eq!(r.expect_err("must fail").code, Some(ErrCode::Panic));
        // The pool worker survived and still serves.
        let ok: Result<u32, Response> = s.run_pooled(Duration::from_secs(5), || 7);
        assert_eq!(ok.unwrap(), 7);
        // The `panic` response races the worker's unwind by design (the
        // sender drop is the signal); only the counter needs a moment.
        let deadline = Instant::now() + Duration::from_secs(5);
        while s.pool.isolated_panics() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let report = handle(&s, &Request::new("report"));
        assert!(report.body.contains("\"isolated_panics\": 1"), "{}", report.body);
    }

    #[test]
    fn overload_sheds_with_overloaded_code() {
        let s = Server::new(
            ServerConfig { workers: 1, queue: 1, default_deadline_ms: 1_000 },
            MeasureCache::new(),
        );
        let (gate_tx, gate_rx) = channel::<()>();
        // Pin the single worker, then fill the queue slot.
        s.pool
            .try_submit(move || {
                let _ = gate_rx.recv_timeout(Duration::from_secs(10));
            })
            .unwrap();
        let mut shed = 0;
        for _ in 0..4 {
            let r: Result<(), Response> = s.run_pooled(Duration::from_millis(1), || {});
            if let Err(resp) = r {
                if resp.code == Some(ErrCode::Overloaded) {
                    shed += 1;
                }
            }
        }
        assert!(shed >= 1, "a full queue must shed with `overloaded`");
        gate_tx.send(()).unwrap();
    }

    #[test]
    fn shutdown_drains_and_refuses_new_work() {
        let s = server();
        let resp = handle(&s, &Request::new("shutdown"));
        assert!(resp.is_ok(), "{}", resp.body);
        assert!(s.shutting_down());
        let refused = handle(&s, &Request::new("optimize").with_body(DEMO));
        assert_eq!(refused.code, Some(ErrCode::ShuttingDown));
        // Introspection still answers while draining.
        let h = handle(&s, &Request::new("health"));
        assert!(h.body.contains("\"status\": \"draining\""), "{}", h.body);
        s.finish().unwrap();
    }

    #[test]
    fn connection_loop_speaks_frames_end_to_end() {
        let s = server();
        let mut input = Vec::new();
        write_frame(&mut input, &Request::new("health").encode()).unwrap();
        write_frame(&mut input, &Request::new("measure").with("app", "ADI").encode()).unwrap();
        let mut out = Vec::new();
        s.serve_connection(&mut &input[..], &mut out).unwrap();
        let mut r = &out[..];
        let first = match read_frame(&mut r).unwrap() {
            FrameIn::Frame(p) => Response::parse(&p).unwrap(),
            other => panic!("expected frame, got {other:?}"),
        };
        assert!(first.is_ok());
        let second = match read_frame(&mut r).unwrap() {
            FrameIn::Frame(p) => Response::parse(&p).unwrap(),
            other => panic!("expected frame, got {other:?}"),
        };
        assert!(second.is_ok(), "{}", second.body);
        assert!(matches!(read_frame(&mut r).unwrap(), FrameIn::Eof));
    }
}
