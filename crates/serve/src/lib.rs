//! `gcr-serve` — the optimization service daemon and its chaos harness.
//!
//! The workspace's experiment binaries are batch programs: they run a
//! sweep, write a report, exit. This crate wraps the same checked
//! optimizer and measurement engine in a long-running daemon speaking the
//! versioned, length-prefixed [`proto`] protocol over stdio or a unix
//! socket, built so that *requests* fail — never the process:
//!
//! * a panicking request is caught on its pool worker and answered with
//!   `err panic` ([`server`]);
//! * a request that blows its deadline or interpreter-fuel budget gets a
//!   structured `err timeout` diagnostic;
//! * when the bounded admission queue is full, requests are shed
//!   immediately with `err overloaded` instead of queueing without bound;
//! * `shutdown` drains in-flight work and flushes the crash-safe
//!   measurement store ([`gcr_bench::sweep::MeasureCache`]).
//!
//! The [`chaos`] module drives randomized client workloads against a
//! live server — usually one with `GCR_FAULT` injections armed — and
//! checks the properties above from the outside: the process stays up,
//! no request outlives its deadline unanswered, non-faulted requests are
//! byte-deterministic, and a corrupted cache self-heals on reload.
//!
//! Binaries: `gcr-serve` (the daemon), `gcr-chaos` (the fault-injection
//! campaign driver), `serve_bench` (latency/throughput/shed-rate
//! benchmark feeding the `serve` section of `BENCH_sweep.json`).

pub mod chaos;
pub mod proto;
pub mod server;

pub use proto::{ErrCode, Request, Response};
pub use server::{Server, ServerConfig};
