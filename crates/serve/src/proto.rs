//! The `gcr-serve/v1` wire protocol.
//!
//! Every message — request or response — is one *frame*: a little-endian
//! `u32` byte length followed by that many bytes of UTF-8 payload. Length
//! prefixing keeps framing trivial to parse incrementally and makes a
//! torn connection detectable: a reader that hits EOF mid-frame reports
//! [`ProtoError::Truncated`] instead of misparsing the tail of one
//! message as the head of the next.
//!
//! # Wire format
//!
//! Request payload:
//!
//! ```text
//! gcr-serve/v1 <verb>\n
//! <key>=<value>\n        (zero or more headers)
//! \n
//! <body bytes>           (verb-specific, may be empty)
//! ```
//!
//! Response payload:
//!
//! ```text
//! gcr-serve/v1 ok\n\n<JSON body>
//! gcr-serve/v1 err <code>\n\n<JSON body>
//! ```
//!
//! # Verbs
//!
//! | verb       | body           | headers                                        | answers with |
//! |------------|----------------|------------------------------------------------|--------------|
//! | `health`   | —              | —                                              | status, uptime, pool geometry |
//! | `report`   | —              | —                                              | request/error/cache counters |
//! | `optimize` | program source | `strategy`, `deadline_ms`                      | optimized program + diagnostics |
//! | `measure`  | —              | `app`, `strategy`, `size`, `steps`, `deadline_ms` | simulated miss counts and cycles |
//! | `predict`  | program source | `strategy`, `size`, `steps`, `fallback`, `deadline_ms` | analytic miss counts from the [`gcr_static`] model |
//! | `shutdown` | —              | —                                              | `{"draining": true}` |
//!
//! `predict` accepts sizes far beyond the simulator's request bound
//! (`size` up to 10⁹): the symbolic model evaluates in microseconds at
//! any size. When the program defeats the model (several size
//! parameters, fit failure past tolerance), the server falls back to
//! direct simulation if `fallback=sim` (the default) *and* the size is
//! small enough to simulate interactively; otherwise it answers
//! `err not-analyzable`.
//!
//! # Error codes
//!
//! A closed set ([`ErrCode`]); the JSON body of an error always carries
//! `error` (the code again) and `message`, plus code-specific diagnostic
//! fields (a timeout reports its deadline and elapsed time).
//!
//! | code | meaning |
//! |------|---------|
//! | `bad-request`         | parsed, but nonsensical (unknown verb/strategy, bound violation) |
//! | `unsupported-version` | the peer speaks a different `gcr-serve/…` version |
//! | `panic`               | the handler panicked; the panic was isolated, the server lives |
//! | `timeout`             | deadline or interpreter-fuel budget exhausted |
//! | `overloaded`          | admission queue full; request shed unstarted |
//! | `shutting-down`       | server is draining; no new work |
//! | `not-analyzable`      | `predict` could not build a symbolic model and fallback simulation was unavailable |
//! | `internal`            | the pipeline or simulator rejected the request for its content |
//!
//! The version token is checked on both sides: a server answering a
//! `gcr-serve/v2` client says `err unsupported-version` rather than
//! guessing.
//!
//! # Examples
//!
//! Requests and responses round-trip through [`Request::encode`] /
//! [`Request::parse`]:
//!
//! ```
//! use gcr_serve::proto::Request;
//!
//! let req = Request::new("predict")
//!     .with("size", 1_000_000_000i64)
//!     .with("strategy", "fuse+group")
//!     .with_body("program p\nparam N\narray A[N]\nfor i = 1, N { A[i] = f(A[i]) }\n");
//! let back = Request::parse(&req.encode()).unwrap();
//! assert_eq!(back.verb, "predict");
//! assert_eq!(back.header("size"), Some("1000000000"));
//! ```
//!
//! Every error code has a stable wire name that parses back to itself:
//!
//! ```
//! use gcr_serve::proto::ErrCode;
//!
//! assert_eq!(ErrCode::NotAnalyzable.name(), "not-analyzable");
//! for code in ErrCode::ALL {
//!     assert_eq!(ErrCode::from_name(code.name()), Some(code));
//! }
//! ```

use std::io::{ErrorKind, Read, Write};

/// Protocol identifier, the first token of every payload.
pub const PROTO: &str = "gcr-serve/v1";

/// Hard bound on a frame payload. Larger length prefixes are rejected
/// before allocation — a corrupt or hostile prefix must not OOM the
/// daemon.
pub const MAX_FRAME: usize = 4 << 20;

/// What went wrong reading or parsing a frame.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying transport failed.
    Io(std::io::Error),
    /// The connection ended in the middle of a frame.
    Truncated {
        /// Bytes actually read.
        got: usize,
        /// Bytes the prefix promised.
        want: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME`].
    TooLarge(usize),
    /// The peer speaks a different protocol version.
    WrongVersion(String),
    /// The payload does not follow the grammar above.
    Malformed(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "i/o: {e}"),
            ProtoError::Truncated { got, want } => {
                write!(f, "truncated frame: got {got} of {want} bytes")
            }
            ProtoError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds {MAX_FRAME}"),
            ProtoError::WrongVersion(v) => write!(f, "unsupported protocol version {v:?}"),
            ProtoError::Malformed(why) => write!(f, "malformed payload: {why}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> ProtoError {
        ProtoError::Io(e)
    }
}

/// One read attempt on a framed connection.
#[derive(Debug)]
pub enum FrameIn {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// The peer closed the connection cleanly (EOF between frames).
    Eof,
    /// A read timeout expired with no frame started — the connection is
    /// idle. Only possible on transports with a read timeout set.
    Idle,
}

/// Reads one length-prefixed frame. EOF *between* frames is [`FrameIn::Eof`];
/// EOF or persistent timeout *inside* a frame is [`ProtoError::Truncated`].
/// A read timeout before the first byte of the prefix is [`FrameIn::Idle`],
/// so a server can poll its shutdown flag on an idle connection.
pub fn read_frame(r: &mut impl Read) -> Result<FrameIn, ProtoError> {
    let mut prefix = [0u8; 4];
    match read_full(r, &mut prefix)? {
        ReadFull::Done => {}
        ReadFull::Empty => return Ok(FrameIn::Eof),
        ReadFull::Idle => return Ok(FrameIn::Idle),
        ReadFull::Short(got) => return Err(ProtoError::Truncated { got, want: 4 }),
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(ProtoError::TooLarge(len));
    }
    let mut payload = vec![0u8; len];
    match read_full(r, &mut payload)? {
        ReadFull::Done => Ok(FrameIn::Frame(payload)),
        ReadFull::Empty => Err(ProtoError::Truncated { got: 0, want: len }),
        // A timeout after the prefix means the peer stalled before its
        // payload: the frame will never complete usefully, treat it as torn.
        ReadFull::Idle => Err(ProtoError::Truncated { got: 0, want: len }),
        ReadFull::Short(got) => Err(ProtoError::Truncated { got, want: len }),
    }
}

enum ReadFull {
    Done,
    /// EOF before the first byte.
    Empty,
    /// Timeout before the first byte.
    Idle,
    /// EOF after `n` bytes.
    Short(usize),
}

fn read_full(r: &mut impl Read, buf: &mut [u8]) -> std::io::Result<ReadFull> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 { ReadFull::Empty } else { ReadFull::Short(filled) })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if filled == 0 {
                    return Ok(ReadFull::Idle);
                }
                // Mid-message stall: keep waiting for the rest; the peer
                // committed to a frame by sending its first bytes.
                continue;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(ReadFull::Done)
}

/// Writes one frame: length prefix then payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = payload.len();
    assert!(len <= MAX_FRAME, "frame of {len} bytes exceeds MAX_FRAME");
    w.write_all(&(len as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// A parsed request frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// The operation: `optimize`, `measure`, `predict`, `report`,
    /// `health`, `shutdown`.
    pub verb: String,
    /// `key=value` headers in wire order.
    pub headers: Vec<(String, String)>,
    /// Verb-specific body (program source for `optimize`).
    pub body: String,
}

impl Request {
    /// A request with no headers and no body.
    pub fn new(verb: &str) -> Request {
        Request { verb: verb.into(), headers: Vec::new(), body: String::new() }
    }

    /// Adds a header (builder-style).
    pub fn with(mut self, key: &str, value: impl ToString) -> Request {
        self.headers.push((key.into(), value.to_string()));
        self
    }

    /// Sets the body (builder-style).
    pub fn with_body(mut self, body: impl Into<String>) -> Request {
        self.body = body.into();
        self
    }

    /// First value of header `key`, if present.
    pub fn header(&self, key: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Serializes to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = format!("{PROTO} {}\n", self.verb);
        for (k, v) in &self.headers {
            out.push_str(k);
            out.push('=');
            out.push_str(v);
            out.push('\n');
        }
        out.push('\n');
        out.push_str(&self.body);
        out.into_bytes()
    }

    /// Parses a frame payload. Distinguishes [`ProtoError::WrongVersion`]
    /// from garbage so the server can answer with the right error code.
    pub fn parse(payload: &[u8]) -> Result<Request, ProtoError> {
        let text = std::str::from_utf8(payload)
            .map_err(|_| ProtoError::Malformed("payload is not UTF-8".into()))?;
        let (head, body) = match text.split_once("\n\n") {
            Some((h, b)) => (h, b),
            None => (text.trim_end_matches('\n'), ""),
        };
        let mut lines = head.lines();
        let first = lines.next().unwrap_or("");
        let (version, verb) = first
            .split_once(' ')
            .ok_or_else(|| ProtoError::Malformed(format!("bad request line {first:?}")))?;
        if version != PROTO {
            return Err(ProtoError::WrongVersion(version.into()));
        }
        if verb.is_empty() || !verb.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
            return Err(ProtoError::Malformed(format!("bad verb {verb:?}")));
        }
        let mut headers = Vec::new();
        for line in lines {
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| ProtoError::Malformed(format!("bad header line {line:?}")))?;
            headers.push((k.trim().to_string(), v.trim().to_string()));
        }
        Ok(Request { verb: verb.into(), headers, body: body.into() })
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// The closed set of error codes a response can carry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrCode {
    /// The request frame parsed but asked for something nonsensical.
    BadRequest,
    /// The request used a protocol version this server does not speak.
    UnsupportedVersion,
    /// The request's handler panicked; the panic was isolated.
    Panic,
    /// The request exceeded its deadline or fuel budget.
    Timeout,
    /// The admission queue was full; the request was shed unstarted.
    Overloaded,
    /// The server is draining and accepts no new work.
    ShuttingDown,
    /// `predict` could not build a symbolic reuse model for the program
    /// and fallback simulation was unavailable (disabled, or the size is
    /// beyond the interactive simulation bound).
    NotAnalyzable,
    /// The pipeline or simulator rejected the request for its content.
    Internal,
}

impl ErrCode {
    /// All codes, for exhaustive accounting.
    pub const ALL: [ErrCode; 8] = [
        ErrCode::BadRequest,
        ErrCode::UnsupportedVersion,
        ErrCode::Panic,
        ErrCode::Timeout,
        ErrCode::Overloaded,
        ErrCode::ShuttingDown,
        ErrCode::NotAnalyzable,
        ErrCode::Internal,
    ];

    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            ErrCode::BadRequest => "bad-request",
            ErrCode::UnsupportedVersion => "unsupported-version",
            ErrCode::Panic => "panic",
            ErrCode::Timeout => "timeout",
            ErrCode::Overloaded => "overloaded",
            ErrCode::ShuttingDown => "shutting-down",
            ErrCode::NotAnalyzable => "not-analyzable",
            ErrCode::Internal => "internal",
        }
    }

    /// Parses a wire name.
    pub fn from_name(name: &str) -> Option<ErrCode> {
        ErrCode::ALL.iter().copied().find(|c| c.name() == name)
    }
}

/// A parsed response frame.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// `None` for `ok`, the code for `err`.
    pub code: Option<ErrCode>,
    /// JSON body text.
    pub body: String,
}

impl Response {
    /// Whether this is an `ok` response.
    pub fn is_ok(&self) -> bool {
        self.code.is_none()
    }

    /// Serializes to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = match self.code {
            None => format!("{PROTO} ok\n\n"),
            Some(code) => format!("{PROTO} err {}\n\n", code.name()),
        };
        out.push_str(&self.body);
        out.into_bytes()
    }

    /// Parses a frame payload (client side).
    pub fn parse(payload: &[u8]) -> Result<Response, ProtoError> {
        let text = std::str::from_utf8(payload)
            .map_err(|_| ProtoError::Malformed("payload is not UTF-8".into()))?;
        let (head, body) = text
            .split_once("\n\n")
            .ok_or_else(|| ProtoError::Malformed("response has no header/body split".into()))?;
        let mut tokens = head.split(' ');
        let version = tokens.next().unwrap_or("");
        if version != PROTO {
            return Err(ProtoError::WrongVersion(version.into()));
        }
        match (tokens.next(), tokens.next()) {
            (Some("ok"), None) => Ok(Response { code: None, body: body.into() }),
            (Some("err"), Some(code)) => {
                let code = ErrCode::from_name(code)
                    .ok_or_else(|| ProtoError::Malformed(format!("unknown error code {code:?}")))?;
                Ok(Response { code: Some(code), body: body.into() })
            }
            _ => Err(ProtoError::Malformed(format!("bad response line {head:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert!(matches!(read_frame(&mut r).unwrap(), FrameIn::Frame(p) if p == b"hello"));
        assert!(matches!(read_frame(&mut r).unwrap(), FrameIn::Frame(p) if p.is_empty()));
        assert!(matches!(read_frame(&mut r).unwrap(), FrameIn::Eof));
    }

    #[test]
    fn truncated_and_oversized_frames_are_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello world").unwrap();
        // Cut inside the payload.
        let mut r = &buf[..buf.len() - 4];
        assert!(matches!(read_frame(&mut r), Err(ProtoError::Truncated { .. })));
        // Cut inside the prefix.
        let mut r = &buf[..2];
        assert!(matches!(read_frame(&mut r), Err(ProtoError::Truncated { got: 2, want: 4 })));
        // A hostile prefix must be rejected before allocation.
        let huge = (MAX_FRAME as u32 + 1).to_le_bytes();
        let mut r = &huge[..];
        assert!(matches!(read_frame(&mut r), Err(ProtoError::TooLarge(_))));
    }

    #[test]
    fn requests_round_trip() {
        let req = Request::new("measure")
            .with("app", "ADI")
            .with("strategy", "fuse+group")
            .with("size", 12)
            .with_body("not used");
        let back = Request::parse(&req.encode()).unwrap();
        assert_eq!(back, req);
        assert_eq!(back.header("app"), Some("ADI"));
        assert_eq!(back.header("missing"), None);
    }

    #[test]
    fn request_parse_rejects_bad_payloads() {
        assert!(matches!(
            Request::parse(b"gcr-serve/v2 health\n\n"),
            Err(ProtoError::WrongVersion(v)) if v == "gcr-serve/v2"
        ));
        assert!(matches!(Request::parse(b"nonsense"), Err(ProtoError::Malformed(_))));
        assert!(matches!(
            Request::parse(b"gcr-serve/v1 bad verb\n\n"),
            Err(ProtoError::Malformed(_))
        ));
        assert!(matches!(
            Request::parse(b"gcr-serve/v1 health\nnot-a-header\n\n"),
            Err(ProtoError::Malformed(_))
        ));
        assert!(matches!(Request::parse(&[0xff, 0xfe]), Err(ProtoError::Malformed(_))));
    }

    #[test]
    fn responses_round_trip() {
        let ok = Response { code: None, body: "{\"x\": 1}\n".into() };
        assert_eq!(Response::parse(&ok.encode()).unwrap(), ok);
        for code in ErrCode::ALL {
            let err =
                Response { code: Some(code), body: format!("{{\"error\": \"{}\"}}", code.name()) };
            let back = Response::parse(&err.encode()).unwrap();
            assert_eq!(back, err);
            assert!(!back.is_ok());
            assert_eq!(ErrCode::from_name(code.name()), Some(code));
        }
        assert!(Response::parse(b"gcr-serve/v1 err made-up\n\n{}").is_err());
    }
}
