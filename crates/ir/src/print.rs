//! Pretty printer: renders a program as LoopLang source text. The output of
//! the printer is accepted by `gcr-frontend`'s parser (round-trip property
//! tested there), which is how transformed programs are inspected.

use crate::expr::{BinOp, Expr, UnOp};
use crate::linexpr::LinExpr;
use crate::program::Program;
use crate::stmt::{ArrayRef, AssignKind, GuardedStmt, ReduceOp, Stmt, Subscript};
use std::fmt::Write as _;

/// Renders a whole program as LoopLang text.
///
/// Distinct loop variables may share a source name after fusion (two `j`
/// loops from different nests can end up nested); such shadowed variables
/// are printed with a disambiguating suffix so the text reparses.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "program {}", p.name);
    if !p.params.is_empty() {
        let names: Vec<_> = p.params.iter().map(|d| d.name.clone()).collect();
        let _ = writeln!(out, "param {}", names.join(", "));
    }
    let names = display_names(p);
    let pr = Pr { p, names: &names };
    for a in &p.arrays {
        if a.is_scalar() {
            let _ = writeln!(out, "scalar {}", a.name);
        } else {
            let dims: Vec<_> = a.dims.iter().map(|d| lin(&pr, d)).collect();
            let _ = writeln!(out, "array {}[{}]", a.name, dims.join(", "));
        }
    }
    let _ = writeln!(out);
    print_stmts(&pr, &p.body, 0, &mut out);
    out
}

/// Computes collision-free display names for loop variables: a loop whose
/// declared name matches an enclosing loop's display name gets a numeric
/// suffix.
fn display_names(p: &Program) -> Vec<String> {
    let mut names: Vec<String> = p.vars.iter().map(|v| v.name.clone()).collect();
    fn walk(p: &Program, stmts: &[GuardedStmt], active: &mut Vec<String>, names: &mut Vec<String>) {
        for gs in stmts {
            if let Stmt::Loop(l) = &gs.stmt {
                let base = &p.var(l.var).name;
                let mut name = base.clone();
                let mut k = 1;
                while active.contains(&name) {
                    k += 1;
                    name = format!("{base}_v{k}");
                }
                names[l.var.index()] = name.clone();
                active.push(name);
                walk(p, &l.body, active, names);
                active.pop();
            }
        }
    }
    walk(p, &p.body, &mut Vec::new(), &mut names);
    names
}

/// Program plus display names, threaded through the printing helpers.
struct Pr<'a> {
    p: &'a Program,
    names: &'a [String],
}

fn lin(pr: &Pr<'_>, e: &LinExpr) -> String {
    let p = pr.p;
    let namer = |q: crate::program::ParamId| p.param(q).name.clone();
    format!("{}", e.display_with(&namer))
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn print_stmts(p: &Pr<'_>, stmts: &[GuardedStmt], depth: usize, out: &mut String) {
    for gs in stmts {
        indent(out, depth);
        for (v, r) in &gs.outer {
            let _ = write!(
                out,
                "when {} in [{}, {}] ",
                p.names[v.index()],
                lin(p, &r.lo),
                lin(p, &r.hi)
            );
        }
        if let Some(g) = &gs.guard {
            let _ = write!(out, "when [{}, {}] ", lin(p, &g.lo), lin(p, &g.hi));
        }
        match &gs.stmt {
            Stmt::Assign(a) => {
                let op = match a.kind {
                    AssignKind::Normal => "=",
                    AssignKind::Reduce(ReduceOp::Sum) => "sum=",
                    AssignKind::Reduce(ReduceOp::Max) => "max=",
                    AssignKind::Reduce(ReduceOp::Min) => "min=",
                };
                let _ = writeln!(out, "{} {} {}", aref(p, &a.lhs), op, expr(p, &a.rhs));
            }
            Stmt::Loop(l) => {
                let _ = writeln!(
                    out,
                    "for {} = {}, {} {{",
                    p.names[l.var.index()],
                    lin(p, &l.lo),
                    lin(p, &l.hi)
                );
                print_stmts(p, &l.body, depth + 1, out);
                indent(out, depth);
                out.push_str("}\n");
            }
        }
    }
}

fn aref(p: &Pr<'_>, r: &ArrayRef) -> String {
    let name = &p.p.array(r.array).name;
    if r.subs.is_empty() {
        return name.clone();
    }
    let subs: Vec<_> = r.subs.iter().map(|s| sub(p, s)).collect();
    format!("{}[{}]", name, subs.join(", "))
}

fn sub(p: &Pr<'_>, s: &Subscript) -> String {
    match s {
        Subscript::Var { var, offset } => {
            let n = &p.names[var.index()];
            match offset {
                0 => n.clone(),
                k if *k > 0 => format!("{n}+{k}"),
                k => format!("{n}{k}"),
            }
        }
        Subscript::Invariant(e) => lin(p, e),
    }
}

/// Operator precedence for minimal parenthesization.
fn prec(e: &Expr) -> u8 {
    match e {
        Expr::Bin(BinOp::Add | BinOp::Sub, ..) => 1,
        Expr::Var { offset, .. } if *offset != 0 => 1,
        Expr::Lin(l)
            if l.as_const().is_none() && (l.terms().len() > 1 || l.constant_part() != 0) =>
        {
            1
        }
        Expr::Bin(BinOp::Mul | BinOp::Div, ..) => 2,
        Expr::Unary(UnOp::Neg, _) => 3,
        _ => 4,
    }
}

fn expr(p: &Pr<'_>, e: &Expr) -> String {
    match e {
        Expr::Const(c) => {
            if c.fract() == 0.0 && c.abs() < 1e15 {
                format!("{:.1}", c)
            } else {
                format!("{c}")
            }
        }
        Expr::Lin(l) => lin(p, l),
        Expr::Var { var, offset } => {
            let n = &p.names[var.index()];
            match offset {
                0 => n.clone(),
                k if *k > 0 => format!("{n} + {k}"),
                k => format!("{n} - {}", -k),
            }
        }
        Expr::Read(r) => aref(p, r),
        Expr::Unary(op, a) => {
            let inner = sub_expr(p, a, 3);
            match op {
                UnOp::Neg => format!("-{inner}"),
                UnOp::Sqrt => format!("sqrt({})", expr(p, a)),
                UnOp::Abs => format!("abs({})", expr(p, a)),
            }
        }
        Expr::Bin(op, a, b) => {
            let (sym, pr) = match op {
                BinOp::Add => ("+", 1),
                BinOp::Sub => ("-", 1),
                BinOp::Mul => ("*", 2),
                BinOp::Div => ("/", 2),
                BinOp::Max => return format!("max({}, {})", expr(p, a), expr(p, b)),
                BinOp::Min => return format!("min({}, {})", expr(p, a), expr(p, b)),
            };
            // Right operand needs parens at equal precedence for - and /.
            let l = sub_expr(p, a, pr);
            let r = sub_expr(p, b, pr + 1);
            format!("{l} {sym} {r}")
        }
        Expr::Call(name, args) => {
            let args: Vec<_> = args.iter().map(|a| expr(p, a)).collect();
            format!("{}({})", name, args.join(", "))
        }
    }
}

fn sub_expr(p: &Pr<'_>, e: &Expr, min_prec: u8) -> String {
    let s = expr(p, e);
    if prec(e) < min_prec {
        format!("({s})")
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::stmt::Range;

    #[test]
    fn prints_simple_program() {
        let mut b = ProgramBuilder::new("demo");
        let n = b.param("N");
        let a = b.array("A", &[LinExpr::param(n)]);
        let i = b.var("i");
        let rhs = b.read(a, vec![Subscript::var(i, -1)]);
        let rhs = Expr::Call("f", vec![rhs]);
        let s = b.assign(a, vec![Subscript::var(i, 0)], rhs);
        let l = b.for_(i, LinExpr::konst(3), LinExpr::param(n).add_const(-2), vec![s]);
        b.push(l);
        let txt = print_program(&b.finish());
        assert!(txt.contains("program demo"));
        assert!(txt.contains("array A[N]"));
        assert!(txt.contains("for i = 3, N - 2 {"));
        assert!(txt.contains("A[i] = f(A[i-1])"));
    }

    #[test]
    fn prints_guards_and_reductions() {
        let mut b = ProgramBuilder::new("g");
        let n = b.param("N");
        let a = b.array("A", &[LinExpr::param(n)]);
        let r = b.scalar("rmax");
        let i = b.var("i");
        let e = b.read(a, vec![Subscript::var(i, 0)]);
        let red = b.reduce(crate::stmt::ReduceOp::Max, r, vec![], e);
        let mut l = match b.for_(i, LinExpr::konst(1), LinExpr::param(n), vec![red]) {
            Stmt::Loop(l) => l,
            _ => unreachable!(),
        };
        l.body[0].guard = Some(Range::consts(2, 2));
        b.push(Stmt::Loop(l));
        let txt = print_program(&b.finish());
        assert!(txt.contains("when [2, 2] rmax max= A[i]"), "got:\n{txt}");
        assert!(txt.contains("scalar rmax"));
    }

    #[test]
    fn precedence_parens() {
        let mut b = ProgramBuilder::new("p");
        let n = b.param("N");
        let a = b.array("A", &[LinExpr::param(n)]);
        let i = b.var("i");
        let x = b.read(a, vec![Subscript::var(i, 0)]);
        let y = b.read(a, vec![Subscript::var(i, 1)]);
        let z = b.read(a, vec![Subscript::var(i, 2)]);
        // (x + y) * z must print with parens
        let e = Expr::mul(Expr::add(x, y), z);
        let s = b.assign(a, vec![Subscript::var(i, 0)], e);
        let l = b.for_(i, LinExpr::konst(1), LinExpr::param(n).add_const(-2), vec![s]);
        b.push(l);
        let txt = print_program(&b.finish());
        assert!(txt.contains("(A[i] + A[i+1]) * A[i+2]"), "got:\n{txt}");
    }
}
