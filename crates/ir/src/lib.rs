#![warn(missing_docs)]

//! `gcr-ir` — the loop intermediate representation used throughout the
//! global-cache-reuse compiler.
//!
//! The IR models the input language of Ding & Kennedy's IPPS'01 paper
//! (*Improving Effective Bandwidth through Compiler Enhancement of Global
//! Cache Reuse*), Figure 5:
//!
//! * a program is a list of loops and non-loop statements;
//! * every array subscript is either `i + k` (loop variable plus a
//!   loop-invariant constant) or a loop-invariant expression `k`;
//! * loop bounds are linear in symbolic size parameters (`2`, `N - 1`, ...).
//!
//! Two extensions beyond the paper's Figure 5 make the transformed programs
//! representable without external code generation:
//!
//! * every statement inside a loop carries an optional **guard range**
//!   (the iterations of the enclosing loop for which it is active) — this is
//!   how loop alignment, statement embedding and boundary peeling are
//!   expressed after fusion;
//! * scalar **reduction** assignments (`s = s + e`, `s = max(s, e)`) are
//!   first-class so that kernels such as Tomcatv's residual computation stay
//!   fusible.

pub mod builder;
pub mod error;
pub mod expr;
pub mod linexpr;
pub mod print;
pub mod program;
pub mod stmt;
pub mod subst;
pub mod validate;

pub use builder::ProgramBuilder;
pub use error::{GcrError, Resource};
pub use expr::{BinOp, Expr, UnOp};
pub use linexpr::{LinExpr, ParamBinding};
pub use program::{ArrayDecl, ArrayId, ParamDecl, ParamId, Program, RefId, StmtId, VarDecl, VarId};
pub use stmt::{ArrayRef, Assign, AssignKind, GuardedStmt, Loop, Range, ReduceOp, Stmt, Subscript};
