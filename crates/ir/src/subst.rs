//! Variable substitution utilities used by the loop transformations.
//!
//! * [`rename_shift_var`] — replace every occurrence of `from + k` by
//!   `to + (k + delta)`. Loop alignment by factor `a` (the second loop's
//!   iteration `x` runs at fused iteration `t = x + a`) is
//!   `rename_shift_var(stmt, x, t, -a)`.
//! * [`instantiate_var`] — replace a loop variable by a loop-invariant value;
//!   used to peel a single (possibly symbolic, e.g. `N − 1`) iteration of a
//!   loop into standalone statements.

use crate::expr::Expr;
use crate::linexpr::LinExpr;
use crate::program::VarId;
use crate::stmt::{ArrayRef, Stmt, Subscript};

fn rewrite_ref_shift(r: &mut ArrayRef, from: VarId, to: VarId, delta: i64) {
    for s in &mut r.subs {
        if let Subscript::Var { var, offset } = s {
            if *var == from {
                *var = to;
                *offset += delta;
            }
        }
    }
}

fn rewrite_expr_shift(e: &mut Expr, from: VarId, to: VarId, delta: i64) {
    if let Expr::Var { var, offset } = e {
        if *var == from {
            *var = to;
            *offset += delta;
        }
        return;
    }
    match e {
        Expr::Unary(_, a) => rewrite_expr_shift(a, from, to, delta),
        Expr::Bin(_, a, b) => {
            rewrite_expr_shift(a, from, to, delta);
            rewrite_expr_shift(b, from, to, delta);
        }
        Expr::Call(_, args) => {
            for a in args {
                rewrite_expr_shift(a, from, to, delta);
            }
        }
        Expr::Read(r) => rewrite_ref_shift(r, from, to, delta),
        Expr::Const(_) | Expr::Lin(_) | Expr::Var { .. } => {}
    }
}

/// Replaces every occurrence of `from + k` (in subscripts and value
/// positions) by `to + (k + delta)`, recursing into nested loops. Outer
/// guard entries on nested members referencing `from` are renamed and their
/// ranges shifted accordingly (`from ∈ R  ⇔  to ∈ R − delta`).
pub fn rename_shift_var(stmt: &mut Stmt, from: VarId, to: VarId, delta: i64) {
    match stmt {
        Stmt::Assign(a) => {
            rewrite_ref_shift(&mut a.lhs, from, to, delta);
            rewrite_expr_shift(&mut a.rhs, from, to, delta);
        }
        Stmt::Loop(l) => {
            debug_assert_ne!(l.var, from, "shadowed loop variable");
            for gs in &mut l.body {
                for (v, r) in &mut gs.outer {
                    if *v == from {
                        *v = to;
                        *r = r.shift(-delta);
                    }
                }
                rename_shift_var(&mut gs.stmt, from, to, delta);
            }
        }
    }
}

/// True when any nested member carries an outer-guard entry for `var`.
pub fn has_outer_entry_for(stmt: &Stmt, var: VarId) -> bool {
    match stmt {
        Stmt::Assign(_) => false,
        Stmt::Loop(l) => l.body.iter().any(|gs| {
            gs.outer.iter().any(|(v, _)| *v == var) || has_outer_entry_for(&gs.stmt, var)
        }),
    }
}

fn instantiate_ref(r: &mut ArrayRef, var: VarId, value: &LinExpr) {
    for s in &mut r.subs {
        if let Subscript::Var { var: v, offset } = s {
            if *v == var {
                *s = Subscript::Invariant(value.add_const(*offset));
            }
        }
    }
}

fn instantiate_expr(e: &mut Expr, var: VarId, value: &LinExpr) {
    if let Expr::Var { var: v, offset } = e {
        if *v == var {
            *e = Expr::Lin(value.add_const(*offset));
        }
        return;
    }
    match e {
        Expr::Unary(_, a) => instantiate_expr(a, var, value),
        Expr::Bin(_, a, b) => {
            instantiate_expr(a, var, value);
            instantiate_expr(b, var, value);
        }
        Expr::Call(_, args) => {
            for a in args {
                instantiate_expr(a, var, value);
            }
        }
        Expr::Read(r) => instantiate_ref(r, var, value),
        Expr::Const(_) | Expr::Lin(_) | Expr::Var { .. } => {}
    }
}

/// Replaces a loop variable by a loop-invariant value everywhere in `stmt`.
pub fn instantiate_var(stmt: &mut Stmt, var: VarId, value: &LinExpr) {
    match stmt {
        Stmt::Assign(a) => {
            instantiate_ref(&mut a.lhs, var, value);
            instantiate_expr(&mut a.rhs, var, value);
        }
        Stmt::Loop(l) => {
            debug_assert_ne!(l.var, var, "shadowed loop variable");
            for gs in &mut l.body {
                instantiate_var(&mut gs.stmt, var, value);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ArrayId, ParamId, RefId, StmtId};
    use crate::stmt::{Assign, AssignKind};

    fn stmt(sub: Subscript, rhs_sub: Subscript) -> Stmt {
        Stmt::Assign(Assign {
            id: StmtId::from_index(0),
            lhs: ArrayRef {
                id: RefId::from_index(0),
                array: ArrayId::from_index(0),
                subs: vec![sub],
            },
            rhs: Expr::Read(ArrayRef {
                id: RefId::from_index(1),
                array: ArrayId::from_index(1),
                subs: vec![rhs_sub],
            }),
            kind: AssignKind::Normal,
        })
    }

    #[test]
    fn shift_rewrites_subscripts() {
        let x = VarId::from_index(0);
        let t = VarId::from_index(1);
        // A[x] = B[x+1]; substitute x = t - 2 (alignment a = 2)
        let mut s = stmt(Subscript::var(x, 0), Subscript::var(x, 1));
        rename_shift_var(&mut s, x, t, -2);
        let a = s.as_assign().unwrap();
        assert_eq!(a.lhs.subs[0], Subscript::var(t, -2));
        match &a.rhs {
            Expr::Read(r) => assert_eq!(r.subs[0], Subscript::var(t, -1)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn shift_leaves_other_vars() {
        let x = VarId::from_index(0);
        let y = VarId::from_index(5);
        let t = VarId::from_index(1);
        let mut s = stmt(Subscript::var(y, 0), Subscript::var(x, 0));
        rename_shift_var(&mut s, x, t, 3);
        let a = s.as_assign().unwrap();
        assert_eq!(a.lhs.subs[0], Subscript::var(y, 0));
    }

    #[test]
    fn instantiate_produces_invariant() {
        let x = VarId::from_index(0);
        let n = LinExpr::param(ParamId::from_index(0));
        let mut s = stmt(Subscript::var(x, 0), Subscript::var(x, -1));
        instantiate_var(&mut s, x, &n); // peel iteration x = N
        let a = s.as_assign().unwrap();
        assert_eq!(a.lhs.subs[0], Subscript::Invariant(n.clone()));
        match &a.rhs {
            Expr::Read(r) => assert_eq!(r.subs[0], Subscript::Invariant(n.add_const(-1))),
            _ => unreachable!(),
        }
    }

    #[test]
    fn instantiate_value_position() {
        let x = VarId::from_index(0);
        let mut e = Expr::Var { var: x, offset: 2 };
        instantiate_expr(&mut e, x, &LinExpr::konst(7));
        assert_eq!(e, Expr::Lin(LinExpr::konst(9)));
    }
}
