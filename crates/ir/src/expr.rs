//! Value expressions for assignment right-hand sides.
//!
//! Subscript arithmetic is deliberately *not* part of `Expr` — all addressing
//! goes through [`crate::stmt::ArrayRef`] so that the dependence analysis
//! only ever sees the restricted subscript forms of the paper. `Expr` is what
//! the interpreter evaluates to produce floating-point values.

use crate::linexpr::LinExpr;
use crate::stmt::ArrayRef;

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// `sqrt`
    Sqrt,
    /// `abs`
    Abs,
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `max`
    Max,
    /// `min`
    Min,
}

/// A value expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Floating constant.
    Const(f64),
    /// A loop-invariant integer expression used as a value (e.g. `N`).
    Lin(LinExpr),
    /// The current value of a loop variable, optionally offset: `i + k`.
    /// Appears when alignment substitutes `i ↦ i − a` into value positions.
    Var {
        /// The loop variable.
        var: crate::program::VarId,
        /// Constant offset.
        offset: i64,
    },
    /// An array (or scalar) read.
    Read(ArrayRef),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// An opaque intrinsic call such as the paper's `f(...)`/`g(...)`. The
    /// interpreter applies a fixed cheap arithmetic definition per name.
    Call(&'static str, Vec<Expr>),
}

// Static constructors, not operators on `self` — the `std::ops` traits
// don't fit (they would consume boxed operands differently).
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// An array read.
    pub fn read(r: ArrayRef) -> Expr {
        Expr::Read(r)
    }

    /// `a + b`
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Add, Box::new(a), Box::new(b))
    }

    /// `a - b`
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Sub, Box::new(a), Box::new(b))
    }

    /// `a * b`
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Mul, Box::new(a), Box::new(b))
    }

    /// `a / b`
    pub fn div(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Div, Box::new(a), Box::new(b))
    }

    /// Visits every `Read` in evaluation order (left to right, depth first).
    pub fn visit_reads<'a>(&'a self, f: &mut impl FnMut(&'a ArrayRef)) {
        match self {
            Expr::Const(_) | Expr::Lin(_) | Expr::Var { .. } => {}
            Expr::Read(r) => f(r),
            Expr::Unary(_, e) => e.visit_reads(f),
            Expr::Bin(_, a, b) => {
                a.visit_reads(f);
                b.visit_reads(f);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.visit_reads(f);
                }
            }
        }
    }

    /// Mutable version of [`Expr::visit_reads`].
    pub fn visit_reads_mut(&mut self, f: &mut impl FnMut(&mut ArrayRef)) {
        match self {
            Expr::Const(_) | Expr::Lin(_) | Expr::Var { .. } => {}
            Expr::Read(r) => f(r),
            Expr::Unary(_, e) => e.visit_reads_mut(f),
            Expr::Bin(_, a, b) => {
                a.visit_reads_mut(f);
                b.visit_reads_mut(f);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.visit_reads_mut(f);
                }
            }
        }
    }

    /// Counts the arithmetic operations in the expression (used by the cycle
    /// cost model).
    pub fn op_count(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Lin(_) | Expr::Var { .. } | Expr::Read(_) => 0,
            Expr::Unary(_, e) => 1 + e.op_count(),
            Expr::Bin(_, a, b) => 1 + a.op_count() + b.op_count(),
            Expr::Call(_, args) => 2 + args.iter().map(Expr::op_count).sum::<usize>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ArrayId, RefId, VarId};
    use crate::stmt::Subscript;

    fn r(arr: u32) -> ArrayRef {
        ArrayRef {
            id: RefId::from_index(arr as usize),
            array: ArrayId::from_index(arr as usize),
            subs: vec![Subscript::var(VarId::from_index(0), 0)],
        }
    }

    #[test]
    fn visit_reads_in_order() {
        let e = Expr::add(Expr::read(r(0)), Expr::mul(Expr::read(r(1)), Expr::read(r(2))));
        let mut seen = Vec::new();
        e.visit_reads(&mut |a| seen.push(a.array.index()));
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn op_count_counts_operators() {
        let e = Expr::add(Expr::Const(1.0), Expr::Unary(UnOp::Sqrt, Box::new(Expr::read(r(0)))));
        assert_eq!(e.op_count(), 2);
        assert_eq!(Expr::Call("f", vec![Expr::Const(0.0)]).op_count(), 2);
    }

    #[test]
    fn visit_reads_mut_can_rewrite() {
        let mut e = Expr::read(r(0));
        e.visit_reads_mut(&mut |a| a.array = ArrayId::from_index(5));
        match e {
            Expr::Read(a) => assert_eq!(a.array.index(), 5),
            _ => unreachable!(),
        }
    }
}
