//! Ergonomic program construction, used by the application kernels and by
//! tests. The builder hands out loop variables before their loops are built
//! so that subscripts can reference them, and it allocates statement and
//! reference ids.
//!
//! ```
//! use gcr_ir::{ProgramBuilder, LinExpr, Subscript, Expr};
//!
//! let mut b = ProgramBuilder::new("copy");
//! let n = b.param("N");
//! let a = b.array("A", &[LinExpr::param(n)]);
//! let c = b.array("B", &[LinExpr::param(n)]);
//! let i = b.var("i");
//! let rhs = b.read(a, vec![Subscript::var(i, 0)]);
//! let body = vec![b.assign(c, vec![Subscript::var(i, 0)], rhs)];
//! let l = b.for_(i, LinExpr::konst(1), LinExpr::param(n), body);
//! b.push(l);
//! let prog = b.finish();
//! assert_eq!(prog.count_loops(), 1);
//! ```

use crate::expr::Expr;
use crate::linexpr::LinExpr;
use crate::program::{ArrayId, ParamDecl, ParamId, Program, VarId};
use crate::stmt::{ArrayRef, Assign, AssignKind, GuardedStmt, Loop, ReduceOp, Stmt, Subscript};

/// Incremental builder for [`Program`].
#[derive(Debug)]
pub struct ProgramBuilder {
    prog: Program,
}

impl ProgramBuilder {
    /// Starts a new program.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder { prog: Program::new(name) }
    }

    /// Declares a size parameter.
    pub fn param(&mut self, name: impl Into<String>) -> ParamId {
        let id = ParamId::from_index(self.prog.params.len());
        self.prog.params.push(ParamDecl { name: name.into() });
        id
    }

    /// Declares an array with the given dimension extents (innermost first).
    pub fn array(&mut self, name: impl Into<String>, dims: &[LinExpr]) -> ArrayId {
        self.prog.add_array(name, dims.to_vec())
    }

    /// Declares a scalar (rank-0 array).
    pub fn scalar(&mut self, name: impl Into<String>) -> ArrayId {
        self.prog.add_array(name, Vec::new())
    }

    /// Declares a fresh loop variable.
    pub fn var(&mut self, name: impl Into<String>) -> VarId {
        self.prog.fresh_var(name)
    }

    /// Builds an array reference with a fresh reference id.
    pub fn aref(&mut self, array: ArrayId, subs: Vec<Subscript>) -> ArrayRef {
        ArrayRef { id: self.prog.fresh_ref_id(), array, subs }
    }

    /// Builds a read expression.
    pub fn read(&mut self, array: ArrayId, subs: Vec<Subscript>) -> Expr {
        let r = self.aref(array, subs);
        Expr::Read(r)
    }

    /// Builds a scalar read.
    pub fn read_scalar(&mut self, array: ArrayId) -> Expr {
        self.read(array, Vec::new())
    }

    /// Builds a plain assignment statement.
    pub fn assign(&mut self, array: ArrayId, subs: Vec<Subscript>, rhs: Expr) -> Stmt {
        let lhs = self.aref(array, subs);
        Stmt::Assign(Assign { id: self.prog.fresh_stmt_id(), lhs, rhs, kind: AssignKind::Normal })
    }

    /// Builds a reduction statement `lhs = lhs ⊕ rhs`.
    pub fn reduce(
        &mut self,
        op: ReduceOp,
        array: ArrayId,
        subs: Vec<Subscript>,
        rhs: Expr,
    ) -> Stmt {
        let lhs = self.aref(array, subs);
        Stmt::Assign(Assign {
            id: self.prog.fresh_stmt_id(),
            lhs,
            rhs,
            kind: AssignKind::Reduce(op),
        })
    }

    /// Builds a loop over a previously declared variable.
    pub fn for_(&mut self, var: VarId, lo: LinExpr, hi: LinExpr, body: Vec<Stmt>) -> Stmt {
        Stmt::Loop(Loop { var, lo, hi, body: body.into_iter().map(GuardedStmt::bare).collect() })
    }

    /// Appends a top-level statement.
    pub fn push(&mut self, stmt: Stmt) {
        self.prog.body.push(GuardedStmt::bare(stmt));
    }

    /// Allocates a fresh statement id (for callers assembling `Stmt` values
    /// by hand, such as the parser).
    pub fn fresh_stmt_id(&mut self) -> crate::program::StmtId {
        self.prog.fresh_stmt_id()
    }

    /// Finishes and returns the program.
    pub fn finish(self) -> Program {
        self.prog
    }

    /// Read-only view of the program under construction.
    pub fn program(&self) -> &Program {
        &self.prog
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_two_loop_program() {
        let mut b = ProgramBuilder::new("t");
        let n = b.param("N");
        let a = b.array("A", &[LinExpr::param(n)]);
        let c = b.array("C", &[LinExpr::param(n)]);
        let i = b.var("i");
        let s1 = {
            let rhs = b.read(a, vec![Subscript::var(i, -1)]);
            b.assign(a, vec![Subscript::var(i, 0)], rhs)
        };
        let l1 = b.for_(i, LinExpr::konst(2), LinExpr::param(n), vec![s1]);
        b.push(l1);
        let j = b.var("j");
        let s2 = {
            let rhs = b.read(a, vec![Subscript::var(j, 0)]);
            b.assign(c, vec![Subscript::var(j, 0)], rhs)
        };
        let l2 = b.for_(j, LinExpr::konst(1), LinExpr::param(n), vec![s2]);
        b.push(l2);
        let p = b.finish();
        assert_eq!(p.count_loops(), 2);
        assert_eq!(p.count_assigns(), 2);
        assert_eq!(p.count_nests(), 2);
        assert_eq!(p.max_depth(), 1);
        // Every ref id unique.
        let mut ids = Vec::new();
        p.walk(|gs, _| {
            if let Stmt::Assign(a) = &gs.stmt {
                for (r, _) in a.refs() {
                    ids.push(r.id.index());
                }
            }
        });
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4);
    }
}
