//! `GcrError` — the workspace-wide typed error for every fallible stage of
//! the optimizer: parsing, validation, fusion legality, regrouping, layout
//! materialization, and (guarded) execution.
//!
//! The paper's pipeline only helps if the transformed program is
//! semantically identical to the original; when any stage cannot establish
//! that, it reports a `GcrError` instead of panicking, and the pipeline's
//! degradation ladder (`gcr-core::pipeline::optimize_checked`) decides
//! whether to retry with a weaker strategy or surface the error.

use crate::validate::ValidateError;
use std::fmt;

/// A bounded resource that ran out (see [`GcrError::BudgetExceeded`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resource {
    /// Interpreter step fuel (loop iterations + statement instances).
    InterpreterFuel,
    /// Bytes of simulated memory a layout may claim.
    MemoryBytes,
    /// `GreedilyFuse` worklist steps.
    FusionWorklist,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::InterpreterFuel => write!(f, "interpreter fuel"),
            Resource::MemoryBytes => write!(f, "memory bytes"),
            Resource::FusionWorklist => write!(f, "fusion worklist steps"),
        }
    }
}

/// Any fault the optimizer, interpreter or driver can report.
#[derive(Debug, Clone, PartialEq)]
pub enum GcrError {
    /// The frontend rejected the source text.
    Parse {
        /// 1-based source line.
        line: u32,
        /// 1-based source column.
        col: u32,
        /// What the parser expected/found.
        msg: String,
    },
    /// A program failed structural validation ([`crate::validate`]).
    Validate {
        /// Pipeline stage whose output was invalid (`"input"`, `"prelim"`,
        /// `"fusion@2"`, ...).
        stage: String,
        /// Every problem found.
        errors: Vec<ValidateError>,
    },
    /// A fusion step produced an illegal or budget-breaking result.
    FusionLegality {
        /// Why the fusion was rejected.
        why: String,
    },
    /// Data regrouping produced an unusable plan or layout.
    Regroup {
        /// What went wrong.
        why: String,
    },
    /// A data layout disagrees with the logical array shape (e.g. an
    /// array fill with the wrong element count).
    LayoutMismatch {
        /// Array involved.
        array: String,
        /// Elements the layout expects.
        expected: usize,
        /// Elements provided/found.
        got: usize,
    },
    /// Guarded execution failed (a transformed program crashed, went out
    /// of bounds, or panicked inside a pass).
    Exec {
        /// Panic message or fault description.
        why: String,
    },
    /// The differential oracle found the transformed program computing
    /// different values than the original.
    OracleMismatch {
        /// Pipeline stage after which the mismatch appeared.
        stage: String,
        /// First array that differs.
        array: String,
        /// Human-readable first difference.
        detail: String,
    },
    /// A resource budget ran out before the work finished.
    BudgetExceeded {
        /// Which budget.
        resource: Resource,
        /// The configured limit.
        limit: u64,
    },
    /// Bad command-line usage (driver only).
    Usage(String),
    /// An I/O failure loading input (driver only).
    Io {
        /// Path involved.
        path: String,
        /// OS error text.
        why: String,
    },
}

impl fmt::Display for GcrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GcrError::Parse { line, col, msg } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
            GcrError::Validate { stage, errors } => {
                write!(f, "invalid program after {stage}: ")?;
                for (i, e) in errors.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{e}")?;
                }
                Ok(())
            }
            GcrError::FusionLegality { why } => write!(f, "fusion legality: {why}"),
            GcrError::Regroup { why } => write!(f, "regrouping failed: {why}"),
            GcrError::LayoutMismatch { array, expected, got } => {
                write!(
                    f,
                    "layout mismatch on array {array}: expected {expected} elements, got {got}"
                )
            }
            GcrError::Exec { why } => write!(f, "execution fault: {why}"),
            GcrError::OracleMismatch { stage, array, detail } => {
                write!(f, "semantic oracle mismatch after {stage} on array {array}: {detail}")
            }
            GcrError::BudgetExceeded { resource, limit } => {
                write!(f, "budget exceeded: {resource} limit {limit} exhausted")
            }
            GcrError::Usage(msg) => write!(f, "{msg}"),
            GcrError::Io { path, why } => write!(f, "{path}: {why}"),
        }
    }
}

impl std::error::Error for GcrError {}

impl From<Vec<ValidateError>> for GcrError {
    fn from(errors: Vec<ValidateError>) -> Self {
        GcrError::Validate { stage: "input".into(), errors }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GcrError::BudgetExceeded { resource: Resource::InterpreterFuel, limit: 10 };
        assert!(e.to_string().contains("interpreter fuel"));
        let e = GcrError::OracleMismatch {
            stage: "regroup".into(),
            array: "A".into(),
            detail: "elem 3: 1 vs 2".into(),
        };
        assert!(e.to_string().contains("after regroup"));
        assert!(e.to_string().contains("array A"));
        let e = GcrError::Parse { line: 4, col: 7, msg: "unexpected `@`".into() };
        assert!(e.to_string().starts_with("parse error"));
    }

    #[test]
    fn validate_errors_convert() {
        let e: GcrError = vec![ValidateError::TopLevelGuard].into();
        assert!(matches!(e, GcrError::Validate { .. }));
        assert!(e.to_string().contains("top-level"));
    }
}
