//! Structural validation of programs: scoping, ranks, and the paper's
//! subscript model (Figure 5). Transformations validate their output in
//! tests, so a bug that produces an ill-formed program is caught early.

use crate::expr::Expr;
use crate::program::{Program, VarId};
use crate::stmt::{ArrayRef, GuardedStmt, Stmt};
use std::collections::HashSet;
use std::fmt;

/// A validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// An `A[...]` has the wrong number of subscripts.
    RankMismatch {
        /// Array name.
        array: String,
        /// Declared rank.
        expected: usize,
        /// Number of subscripts at the reference.
        got: usize,
    },
    /// A subscript uses a loop variable that is not in scope.
    UnboundVar {
        /// Variable name.
        var: String,
    },
    /// Two loops share a loop variable.
    DuplicateLoopVar {
        /// Variable name.
        var: String,
    },
    /// A top-level statement has a guard.
    TopLevelGuard,
    /// An array id is out of range.
    UnknownArray,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::RankMismatch { array, expected, got } => {
                write!(f, "array {array}: expected {expected} subscripts, got {got}")
            }
            ValidateError::UnboundVar { var } => write!(f, "loop variable {var} not in scope"),
            ValidateError::DuplicateLoopVar { var } => {
                write!(f, "loop variable {var} used by more than one loop")
            }
            ValidateError::TopLevelGuard => write!(f, "top-level statement has a guard"),
            ValidateError::UnknownArray => write!(f, "array id out of range"),
        }
    }
}

impl std::error::Error for ValidateError {}

struct Validator<'p> {
    prog: &'p Program,
    scope: Vec<VarId>,
    seen_loop_vars: HashSet<VarId>,
    errors: Vec<ValidateError>,
}

impl<'p> Validator<'p> {
    fn check_ref(&mut self, r: &ArrayRef) {
        if r.array.index() >= self.prog.arrays.len() {
            self.errors.push(ValidateError::UnknownArray);
            return;
        }
        let decl = self.prog.array(r.array);
        if decl.rank() != r.subs.len() {
            self.errors.push(ValidateError::RankMismatch {
                array: decl.name.clone(),
                expected: decl.rank(),
                got: r.subs.len(),
            });
        }
        for s in &r.subs {
            if let Some(v) = s.var_id() {
                if !self.scope.contains(&v) {
                    self.errors
                        .push(ValidateError::UnboundVar { var: self.prog.var(v).name.clone() });
                }
            }
        }
    }

    fn check_expr(&mut self, e: &Expr) {
        match e {
            Expr::Read(r) => self.check_ref(r),
            Expr::Var { var, .. } => {
                if !self.scope.contains(var) {
                    self.errors
                        .push(ValidateError::UnboundVar { var: self.prog.var(*var).name.clone() });
                }
            }
            Expr::Unary(_, a) => self.check_expr(a),
            Expr::Bin(_, a, b) => {
                self.check_expr(a);
                self.check_expr(b);
            }
            Expr::Call(_, args) => {
                for a in args {
                    self.check_expr(a);
                }
            }
            Expr::Const(_) | Expr::Lin(_) => {}
        }
    }

    fn check_stmts(&mut self, stmts: &[GuardedStmt], top: bool) {
        for gs in stmts {
            if top && (gs.guard.is_some() || !gs.outer.is_empty()) {
                self.errors.push(ValidateError::TopLevelGuard);
            }
            for (v, _) in &gs.outer {
                if !self.scope.contains(v) {
                    self.errors
                        .push(ValidateError::UnboundVar { var: self.prog.var(*v).name.clone() });
                }
            }
            match &gs.stmt {
                Stmt::Assign(a) => {
                    self.check_ref(&a.lhs);
                    self.check_expr(&a.rhs);
                }
                Stmt::Loop(l) => {
                    if !self.seen_loop_vars.insert(l.var) {
                        self.errors.push(ValidateError::DuplicateLoopVar {
                            var: self.prog.var(l.var).name.clone(),
                        });
                    }
                    self.scope.push(l.var);
                    self.check_stmts(&l.body, false);
                    self.scope.pop();
                }
            }
        }
    }
}

/// Validates a program, returning every problem found.
pub fn validate(prog: &Program) -> Result<(), Vec<ValidateError>> {
    let mut v =
        Validator { prog, scope: Vec::new(), seen_loop_vars: HashSet::new(), errors: Vec::new() };
    v.check_stmts(&prog.body, true);
    if v.errors.is_empty() {
        Ok(())
    } else {
        Err(v.errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::linexpr::LinExpr;
    use crate::stmt::Subscript;

    #[test]
    fn valid_program_passes() {
        let mut b = ProgramBuilder::new("t");
        let n = b.param("N");
        let a = b.array("A", &[LinExpr::param(n)]);
        let i = b.var("i");
        let rhs = b.read(a, vec![Subscript::var(i, -1)]);
        let s = b.assign(a, vec![Subscript::var(i, 0)], rhs);
        let l = b.for_(i, LinExpr::konst(2), LinExpr::param(n), vec![s]);
        b.push(l);
        assert!(validate(&b.finish()).is_ok());
    }

    #[test]
    fn rank_mismatch_detected() {
        let mut b = ProgramBuilder::new("t");
        let n = b.param("N");
        let a = b.array("A", &[LinExpr::param(n), LinExpr::param(n)]);
        let i = b.var("i");
        let s = b.assign(a, vec![Subscript::var(i, 0)], crate::expr::Expr::Const(0.0));
        let l = b.for_(i, LinExpr::konst(1), LinExpr::param(n), vec![s]);
        b.push(l);
        let errs = validate(&b.finish()).unwrap_err();
        assert!(matches!(errs[0], ValidateError::RankMismatch { .. }));
    }

    #[test]
    fn unbound_var_detected() {
        let mut b = ProgramBuilder::new("t");
        let n = b.param("N");
        let a = b.array("A", &[LinExpr::param(n)]);
        let i = b.var("i");
        // statement uses i but is at top level
        let s = b.assign(a, vec![Subscript::var(i, 0)], crate::expr::Expr::Const(0.0));
        b.push(s);
        let errs = validate(&b.finish()).unwrap_err();
        assert!(errs.iter().any(|e| matches!(e, ValidateError::UnboundVar { .. })));
    }

    #[test]
    fn duplicate_loop_var_detected() {
        let mut b = ProgramBuilder::new("t");
        let n = b.param("N");
        let a = b.array("A", &[LinExpr::param(n)]);
        let i = b.var("i");
        let s1 = b.assign(a, vec![Subscript::var(i, 0)], crate::expr::Expr::Const(0.0));
        let s2 = b.assign(a, vec![Subscript::var(i, 0)], crate::expr::Expr::Const(1.0));
        let l1 = b.for_(i, LinExpr::konst(1), LinExpr::param(n), vec![s1]);
        let l2 = b.for_(i, LinExpr::konst(1), LinExpr::param(n), vec![s2]);
        b.push(l1);
        b.push(l2);
        let errs = validate(&b.finish()).unwrap_err();
        assert!(errs.iter().any(|e| matches!(e, ValidateError::DuplicateLoopVar { .. })));
    }
}
