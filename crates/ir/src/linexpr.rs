//! Symbolic linear expressions `Σ cᵢ·Pᵢ + k` over size parameters.
//!
//! Loop bounds, guard ranges and alignment constraints are all values of
//! [`LinExpr`]. The fusion legality test of the paper — "the alignment factor
//! is a bounded constant" — becomes a check that a `LinExpr` has no parameter
//! terms ([`LinExpr::as_const`]).

use crate::program::ParamId;
use std::cmp::Ordering;
use std::fmt;

/// A linear expression over size parameters: `Σ coeffᵢ · paramᵢ + constant`.
///
/// Terms are kept sorted by parameter id and never contain zero coefficients,
/// so structural equality is semantic equality.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct LinExpr {
    /// Sorted by `ParamId`, coefficients all non-zero.
    terms: Vec<(ParamId, i64)>,
    /// The constant part.
    konst: i64,
}

/// A binding of concrete values to size parameters, used when evaluating
/// bounds at execution time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ParamBinding {
    values: Vec<i64>,
}

impl ParamBinding {
    /// Creates a binding assigning `values[i]` to the parameter with index `i`.
    pub fn new(values: Vec<i64>) -> Self {
        ParamBinding { values }
    }

    /// The value bound to `p`.
    ///
    /// # Panics
    /// Panics if `p` was not given a value.
    pub fn get(&self, p: ParamId) -> i64 {
        self.values[p.index()]
    }

    /// Number of bound parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no parameters are bound.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl LinExpr {
    /// The constant expression `k`.
    pub fn konst(k: i64) -> Self {
        LinExpr { terms: Vec::new(), konst: k }
    }

    /// The expression `1·p`.
    pub fn param(p: ParamId) -> Self {
        LinExpr { terms: vec![(p, 1)], konst: 0 }
    }

    /// The expression `c·p + k`.
    pub fn affine(p: ParamId, c: i64, k: i64) -> Self {
        if c == 0 {
            Self::konst(k)
        } else {
            LinExpr { terms: vec![(p, c)], konst: k }
        }
    }

    /// The constant zero.
    pub fn zero() -> Self {
        Self::konst(0)
    }

    /// The constant part of the expression.
    pub fn constant_part(&self) -> i64 {
        self.konst
    }

    /// The parameter terms `(param, coeff)`, sorted by parameter id.
    pub fn terms(&self) -> &[(ParamId, i64)] {
        &self.terms
    }

    /// Returns `Some(k)` when the expression is the constant `k`.
    pub fn as_const(&self) -> Option<i64> {
        if self.terms.is_empty() {
            Some(self.konst)
        } else {
            None
        }
    }

    /// True when the expression contains no parameter terms.
    pub fn is_const(&self) -> bool {
        self.terms.is_empty()
    }

    /// The coefficient of `p` (zero when absent).
    pub fn coeff(&self, p: ParamId) -> i64 {
        self.terms.binary_search_by_key(&p, |&(q, _)| q).map(|i| self.terms[i].1).unwrap_or(0)
    }

    /// Evaluates under a parameter binding.
    pub fn eval(&self, binding: &ParamBinding) -> i64 {
        self.terms.iter().map(|&(p, c)| c * binding.get(p)).sum::<i64>() + self.konst
    }

    /// `self + other`.
    pub fn add(&self, other: &LinExpr) -> LinExpr {
        let mut out = Vec::with_capacity(self.terms.len() + other.terms.len());
        let (mut i, mut j) = (0, 0);
        while i < self.terms.len() && j < other.terms.len() {
            match self.terms[i].0.cmp(&other.terms[j].0) {
                Ordering::Less => {
                    out.push(self.terms[i]);
                    i += 1;
                }
                Ordering::Greater => {
                    out.push(other.terms[j]);
                    j += 1;
                }
                Ordering::Equal => {
                    let c = self.terms[i].1 + other.terms[j].1;
                    if c != 0 {
                        out.push((self.terms[i].0, c));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.terms[i..]);
        out.extend_from_slice(&other.terms[j..]);
        LinExpr { terms: out, konst: self.konst + other.konst }
    }

    /// `self - other`.
    pub fn sub(&self, other: &LinExpr) -> LinExpr {
        self.add(&other.scale(-1))
    }

    /// `self + k`.
    pub fn add_const(&self, k: i64) -> LinExpr {
        LinExpr { terms: self.terms.clone(), konst: self.konst + k }
    }

    /// `s·self`.
    pub fn scale(&self, s: i64) -> LinExpr {
        if s == 0 {
            return Self::zero();
        }
        LinExpr {
            terms: self.terms.iter().map(|&(p, c)| (p, c * s)).collect(),
            konst: self.konst * s,
        }
    }

    /// Compares two expressions under the assumption that every parameter is
    /// "large" (≫ any constant in the program) and that parameters with
    /// smaller ids dominate. Returns `None` when the expressions involve
    /// different parameters in a way that has no canonical order (never
    /// happens for single-parameter programs).
    ///
    /// This is the order used to pick the hull of fused loop bounds: for
    /// bounds like `2` vs `N - 1` it answers `Less` for any large `N`.
    pub fn cmp_for_large_params(&self, other: &LinExpr) -> Option<Ordering> {
        let d = self.sub(other);
        match d.terms.len() {
            0 => Some(d.konst.cmp(&0)),
            1 => {
                let (_, c) = d.terms[0];
                Some(c.cmp(&0))
            }
            _ => None,
        }
    }

    /// `max(self, other)` under the large-parameter order, `None` if
    /// incomparable.
    pub fn max_large(&self, other: &LinExpr) -> Option<LinExpr> {
        self.cmp_for_large_params(other).map(|o| {
            if o == Ordering::Less {
                other.clone()
            } else {
                self.clone()
            }
        })
    }

    /// `min(self, other)` under the large-parameter order, `None` if
    /// incomparable.
    pub fn min_large(&self, other: &LinExpr) -> Option<LinExpr> {
        self.cmp_for_large_params(other).map(|o| {
            if o == Ordering::Greater {
                other.clone()
            } else {
                self.clone()
            }
        })
    }

    /// Renders with parameter names supplied by `name`.
    pub fn display_with<'a>(&'a self, name: &'a dyn Fn(ParamId) -> String) -> LinExprDisplay<'a> {
        LinExprDisplay { expr: self, name }
    }
}

impl fmt::Debug for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for &(p, c) in &self.terms {
            if first {
                if c == -1 {
                    write!(f, "-P{}", p.index())?;
                } else if c == 1 {
                    write!(f, "P{}", p.index())?;
                } else {
                    write!(f, "{}*P{}", c, p.index())?;
                }
            } else if c < 0 {
                write!(f, " - {}*P{}", -c, p.index())?;
            } else {
                write!(f, " + {}*P{}", c, p.index())?;
            }
            first = false;
        }
        if first {
            write!(f, "{}", self.konst)?;
        } else if self.konst > 0 {
            write!(f, " + {}", self.konst)?;
        } else if self.konst < 0 {
            write!(f, " - {}", -self.konst)?;
        }
        Ok(())
    }
}

/// Helper returned by [`LinExpr::display_with`].
pub struct LinExprDisplay<'a> {
    expr: &'a LinExpr,
    name: &'a dyn Fn(ParamId) -> String,
}

impl fmt::Display for LinExprDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let e = self.expr;
        let mut first = true;
        for &(p, c) in &e.terms {
            let n = (self.name)(p);
            if first {
                match c {
                    1 => write!(f, "{n}")?,
                    -1 => write!(f, "-{n}")?,
                    _ => write!(f, "{c}*{n}")?,
                }
            } else if c < 0 {
                write!(f, " - {}{}", if c == -1 { String::new() } else { format!("{}*", -c) }, n)?;
            } else {
                write!(f, " + {}{}", if c == 1 { String::new() } else { format!("{c}*") }, n)?;
            }
            first = false;
        }
        if first {
            write!(f, "{}", e.konst)?;
        } else if e.konst > 0 {
            write!(f, " + {}", e.konst)?;
        } else if e.konst < 0 {
            write!(f, " - {}", -e.konst)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ParamId {
        ParamId::from_index(i as usize)
    }

    #[test]
    fn constant_arithmetic() {
        let a = LinExpr::konst(3);
        let b = LinExpr::konst(-5);
        assert_eq!(a.add(&b).as_const(), Some(-2));
        assert_eq!(a.sub(&b).as_const(), Some(8));
        assert_eq!(a.scale(4).as_const(), Some(12));
        assert_eq!(a.add_const(7).as_const(), Some(10));
    }

    #[test]
    fn param_terms_cancel() {
        let n = LinExpr::param(p(0));
        let e = n.add_const(3).sub(&n); // N + 3 - N = 3
        assert_eq!(e.as_const(), Some(3));
        assert!(e.is_const());
    }

    #[test]
    fn mixed_params_merge_sorted() {
        let e = LinExpr::affine(p(1), 2, 0).add(&LinExpr::affine(p(0), 1, 5));
        assert_eq!(e.terms(), &[(p(0), 1), (p(1), 2)]);
        assert_eq!(e.constant_part(), 5);
    }

    #[test]
    fn eval_binds_params() {
        let e = LinExpr::affine(p(0), 2, -3); // 2N - 3
        let b = ParamBinding::new(vec![10]);
        assert_eq!(e.eval(&b), 17);
    }

    #[test]
    fn coeff_lookup() {
        let e = LinExpr::affine(p(1), 7, 1);
        assert_eq!(e.coeff(p(1)), 7);
        assert_eq!(e.coeff(p(0)), 0);
    }

    #[test]
    fn large_param_ordering() {
        let n = LinExpr::param(p(0));
        let two = LinExpr::konst(2);
        // 2 < N - 1 for large N
        assert_eq!(two.cmp_for_large_params(&n.add_const(-1)), Some(Ordering::Less));
        // N - 1 vs N - 2
        assert_eq!(n.add_const(-1).cmp_for_large_params(&n.add_const(-2)), Some(Ordering::Greater));
        // equal
        assert_eq!(n.cmp_for_large_params(&n), Some(Ordering::Equal));
    }

    #[test]
    fn min_max_large() {
        let n = LinExpr::param(p(0));
        let lo = LinExpr::konst(2);
        assert_eq!(lo.max_large(&n).unwrap(), n);
        assert_eq!(lo.min_large(&n).unwrap(), lo);
    }

    #[test]
    fn scale_by_zero_is_zero() {
        let n = LinExpr::affine(p(0), 3, 9);
        assert_eq!(n.scale(0), LinExpr::zero());
    }

    #[test]
    fn debug_format() {
        let e = LinExpr::affine(p(0), 1, -2);
        assert_eq!(format!("{e:?}"), "P0 - 2");
        assert_eq!(format!("{:?}", LinExpr::konst(4)), "4");
    }
}
