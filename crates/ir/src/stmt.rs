//! Statements: assignments (possibly reductions), loops, guard ranges and
//! array references.

use crate::expr::Expr;
use crate::linexpr::{LinExpr, ParamBinding};
use crate::program::{ArrayId, RefId, StmtId, VarId};

/// One subscript position of an array reference. Per the paper's input
/// assumptions (Figure 5) a subscript is either a loop variable plus a
/// constant offset, or a loop-invariant linear expression.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Subscript {
    /// `i + offset` for loop variable `i`.
    Var {
        /// The loop variable.
        var: VarId,
        /// The constant offset `k` in `i + k`.
        offset: i64,
    },
    /// A loop-invariant subscript such as `1` or `N - 1`.
    Invariant(LinExpr),
}

impl Subscript {
    /// Shorthand for `i + k`.
    pub fn var(var: VarId, offset: i64) -> Self {
        Subscript::Var { var, offset }
    }

    /// Shorthand for a constant subscript.
    pub fn konst(k: i64) -> Self {
        Subscript::Invariant(LinExpr::konst(k))
    }

    /// The loop variable used, if any.
    pub fn var_id(&self) -> Option<VarId> {
        match self {
            Subscript::Var { var, .. } => Some(*var),
            Subscript::Invariant(_) => None,
        }
    }
}

/// A static array reference `A[s0, s1, ...]` (subscripts innermost-dimension
/// first, matching [`crate::program::ArrayDecl::dims`]).
#[derive(Clone, Debug, PartialEq)]
pub struct ArrayRef {
    /// Unique id of this textual reference.
    pub id: RefId,
    /// Referenced array.
    pub array: ArrayId,
    /// One subscript per dimension.
    pub subs: Vec<Subscript>,
}

/// Reduction operators for `AssignKind::Reduce`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// `lhs = lhs + rhs`
    Sum,
    /// `lhs = max(lhs, rhs)`
    Max,
    /// `lhs = min(lhs, rhs)`
    Min,
}

/// Whether an assignment is a plain store or an associative update.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AssignKind {
    /// `lhs = rhs`
    Normal,
    /// `lhs = lhs ⊕ rhs`; instances commute with each other, which keeps
    /// reduction loops fusible.
    Reduce(ReduceOp),
}

/// An assignment statement.
#[derive(Clone, Debug, PartialEq)]
pub struct Assign {
    /// Static statement id (stable across transformations).
    pub id: StmtId,
    /// Store target.
    pub lhs: ArrayRef,
    /// Value expression.
    pub rhs: Expr,
    /// Plain store or reduction.
    pub kind: AssignKind,
}

impl Assign {
    /// All array references: the lhs followed by every read in the rhs. For
    /// reductions the lhs is also a read.
    pub fn refs(&self) -> Vec<(&ArrayRef, bool)> {
        let mut out: Vec<(&ArrayRef, bool)> = Vec::new();
        if matches!(self.kind, AssignKind::Reduce(_)) {
            out.push((&self.lhs, false)); // reduction reads its target first
        }
        self.rhs.visit_reads(&mut |r| out.push((r, false)));
        out.push((&self.lhs, true));
        out
    }
}

/// An inclusive iteration range `[lo, hi]` in some loop's iteration space.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Range {
    /// Lower bound (inclusive).
    pub lo: LinExpr,
    /// Upper bound (inclusive).
    pub hi: LinExpr,
}

impl Range {
    /// Builds a range.
    pub fn new(lo: LinExpr, hi: LinExpr) -> Self {
        Range { lo, hi }
    }

    /// A single-iteration range `[at, at]`.
    pub fn single(at: LinExpr) -> Self {
        Range { lo: at.clone(), hi: at }
    }

    /// Constant range helper.
    pub fn consts(lo: i64, hi: i64) -> Self {
        Range { lo: LinExpr::konst(lo), hi: LinExpr::konst(hi) }
    }

    /// Shifts both bounds by `k`.
    pub fn shift(&self, k: i64) -> Range {
        Range { lo: self.lo.add_const(k), hi: self.hi.add_const(k) }
    }

    /// Evaluates to a concrete `(lo, hi)` pair.
    pub fn eval(&self, b: &ParamBinding) -> (i64, i64) {
        (self.lo.eval(b), self.hi.eval(b))
    }

    /// True when the range is empty for all large parameter values (best
    /// effort: compares bounds under the large-parameter order).
    pub fn is_empty_large(&self) -> bool {
        matches!(self.lo.cmp_for_large_params(&self.hi), Some(std::cmp::Ordering::Greater))
    }
}

/// A `for var = lo, hi` loop (Fortran-style inclusive bounds, unit step).
#[derive(Clone, Debug, PartialEq)]
pub struct Loop {
    /// Loop variable; unique within the program.
    pub var: VarId,
    /// Lower bound, inclusive.
    pub lo: LinExpr,
    /// Upper bound, inclusive.
    pub hi: LinExpr,
    /// Body statements (each possibly guarded).
    pub body: Vec<GuardedStmt>,
}

impl Loop {
    /// The loop's iteration range.
    pub fn range(&self) -> Range {
        Range { lo: self.lo.clone(), hi: self.hi.clone() }
    }
}

/// A statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// Assignment (or reduction).
    Assign(Assign),
    /// Loop.
    Loop(Loop),
}

impl Stmt {
    /// Convenience accessor.
    pub fn as_loop(&self) -> Option<&Loop> {
        match self {
            Stmt::Loop(l) => Some(l),
            _ => None,
        }
    }

    /// Convenience accessor.
    pub fn as_assign(&self) -> Option<&Assign> {
        match self {
            Stmt::Assign(a) => Some(a),
            _ => None,
        }
    }
}

/// A statement plus the guards restricting the iterations in which it is
/// active. `guard: None` means active in every iteration of the enclosing
/// loop; `outer` adds activity ranges over *enclosing* (outer) loop
/// variables, which arise when inner loops whose outer alignments differ
/// are fused.
///
/// Guards are how fusion expresses alignment, embedding and peeling: after
/// fusing two loops, members of the second loop carry shifted guard ranges;
/// an embedded non-loop statement carries a single-iteration guard.
#[derive(Clone, Debug, PartialEq)]
pub struct GuardedStmt {
    /// The statement.
    pub stmt: Stmt,
    /// Active range over the enclosing loop's variable (`None` = always).
    pub guard: Option<Range>,
    /// Additional activity ranges over outer loop variables.
    pub outer: Vec<(VarId, Range)>,
}

impl GuardedStmt {
    /// An unguarded statement.
    pub fn bare(stmt: Stmt) -> Self {
        GuardedStmt { stmt, guard: None, outer: Vec::new() }
    }

    /// A guarded statement.
    pub fn guarded(stmt: Stmt, guard: Range) -> Self {
        GuardedStmt { stmt, guard: Some(guard), outer: Vec::new() }
    }

    /// The activity range for `var`, if restricted: the enclosing-loop
    /// guard when `var` matches `enclosing`, else the matching outer entry.
    pub fn range_for(&self, var: VarId, enclosing: VarId) -> Option<&Range> {
        if var == enclosing {
            self.guard.as_ref()
        } else {
            self.outer.iter().find(|(v, _)| *v == var).map(|(_, r)| r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::program::{ArrayId, RefId, StmtId};

    fn aref(arr: u32, sub: Subscript) -> ArrayRef {
        ArrayRef {
            id: RefId::from_index(0),
            array: ArrayId::from_index(arr as usize),
            subs: vec![sub],
        }
    }

    #[test]
    fn assign_refs_order_reads_then_write() {
        let v = VarId::from_index(0);
        let a = Assign {
            id: StmtId::from_index(0),
            lhs: aref(0, Subscript::var(v, 0)),
            rhs: Expr::read(aref(1, Subscript::var(v, -1))),
            kind: AssignKind::Normal,
        };
        let refs = a.refs();
        assert_eq!(refs.len(), 2);
        assert!(!refs[0].1, "read first");
        assert!(refs[1].1, "write last");
    }

    #[test]
    fn reduction_reads_its_target() {
        let v = VarId::from_index(0);
        let a = Assign {
            id: StmtId::from_index(0),
            lhs: aref(0, Subscript::konst(0)),
            rhs: Expr::read(aref(1, Subscript::var(v, 0))),
            kind: AssignKind::Reduce(ReduceOp::Sum),
        };
        let refs = a.refs();
        assert_eq!(refs.len(), 3);
        assert_eq!(refs[0].0.array.index(), 0);
        assert!(!refs[0].1);
    }

    #[test]
    fn range_shift_and_empty() {
        let r = Range::consts(2, 5).shift(3);
        assert_eq!(r, Range::consts(5, 8));
        assert!(Range::consts(4, 3).is_empty_large());
        assert!(!Range::consts(3, 3).is_empty_large());
    }
}
