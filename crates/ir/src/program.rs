//! Program container: declarations of parameters, arrays and loop variables,
//! plus the top-level statement list.

use crate::linexpr::LinExpr;
use crate::stmt::GuardedStmt;
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Builds an id from a dense index.
            pub fn from_index(i: usize) -> Self {
                $name(u32::try_from(i).expect("id overflow"))
            }

            /// The dense index of this id.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_type!(
    /// A symbolic size parameter (e.g. `N`).
    ParamId
);
id_type!(
    /// A declared array (scalars are zero-dimensional arrays).
    ArrayId
);
id_type!(
    /// A loop variable. Every loop in a program has a distinct variable.
    VarId
);
id_type!(
    /// A static statement id. Transformations preserve statement ids so that
    /// per-statement measurements (e.g. evadable-reuse classification) can be
    /// compared before and after a transformation.
    StmtId
);
id_type!(
    /// A static array-reference id, one per textual `A[...]` occurrence.
    RefId
);

/// Declaration of a size parameter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParamDecl {
    /// Source-level name.
    pub name: String,
}

/// Declaration of an array. Dimension sizes are listed from the innermost
/// (contiguous, Fortran column-major) dimension outward: `A[d0][d1]` has `d0`
/// contiguous.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Source-level name.
    pub name: String,
    /// Extent of each dimension, innermost first. Empty for scalars.
    pub dims: Vec<LinExpr>,
}

impl ArrayDecl {
    /// Number of dimensions (0 for scalars).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// True for scalar (rank-0) declarations.
    pub fn is_scalar(&self) -> bool {
        self.dims.is_empty()
    }
}

/// Declaration of a loop variable (names are only used for printing).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VarDecl {
    /// Source-level name.
    pub name: String,
}

/// A whole program: declarations plus a top-level list of loops and non-loop
/// statements (the paper's program model).
///
/// Equality is structural and exact — including statement/reference id
/// counters — so `parse(print(p)) == p` holds for parser-originated
/// programs (the conformance corpus round-trip property). Transformed
/// programs retire ids and therefore compare by printed fixpoint instead.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    /// Program name, used in reports.
    pub name: String,
    /// Size parameters.
    pub params: Vec<ParamDecl>,
    /// Arrays (and scalars).
    pub arrays: Vec<ArrayDecl>,
    /// Loop variables.
    pub vars: Vec<VarDecl>,
    /// Top-level statements. Their guards must be `None`.
    pub body: Vec<GuardedStmt>,
    /// Number of statement ids handed out (monotone; never reused).
    pub next_stmt: u32,
    /// Number of reference ids handed out.
    pub next_ref: u32,
}

impl Program {
    /// Creates an empty program with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Program { name: name.into(), ..Default::default() }
    }

    /// Looks up a parameter by name.
    pub fn param_by_name(&self, name: &str) -> Option<ParamId> {
        self.params.iter().position(|p| p.name == name).map(ParamId::from_index)
    }

    /// Looks up an array by name.
    pub fn array_by_name(&self, name: &str) -> Option<ArrayId> {
        self.arrays.iter().position(|a| a.name == name).map(ArrayId::from_index)
    }

    /// Looks up a loop variable by name.
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.vars.iter().position(|v| v.name == name).map(VarId::from_index)
    }

    /// The declaration of `a`.
    pub fn array(&self, a: ArrayId) -> &ArrayDecl {
        &self.arrays[a.index()]
    }

    /// The declaration of `p`.
    pub fn param(&self, p: ParamId) -> &ParamDecl {
        &self.params[p.index()]
    }

    /// The declaration of `v`.
    pub fn var(&self, v: VarId) -> &VarDecl {
        &self.vars[v.index()]
    }

    /// Allocates a fresh statement id.
    pub fn fresh_stmt_id(&mut self) -> StmtId {
        let id = StmtId::from_index(self.next_stmt as usize);
        self.next_stmt += 1;
        id
    }

    /// Allocates a fresh reference id.
    pub fn fresh_ref_id(&mut self) -> RefId {
        let id = RefId::from_index(self.next_ref as usize);
        self.next_ref += 1;
        id
    }

    /// Allocates a fresh loop variable.
    pub fn fresh_var(&mut self, name: impl Into<String>) -> VarId {
        let id = VarId::from_index(self.vars.len());
        self.vars.push(VarDecl { name: name.into() });
        id
    }

    /// Adds an array declaration and returns its id.
    pub fn add_array(&mut self, name: impl Into<String>, dims: Vec<LinExpr>) -> ArrayId {
        let id = ArrayId::from_index(self.arrays.len());
        self.arrays.push(ArrayDecl { name: name.into(), dims });
        id
    }

    /// Iterates over all statements (pre-order, outermost first).
    pub fn walk<'a>(&'a self, mut f: impl FnMut(&'a GuardedStmt, usize)) {
        fn go<'a>(
            stmts: &'a [GuardedStmt],
            depth: usize,
            f: &mut impl FnMut(&'a GuardedStmt, usize),
        ) {
            for gs in stmts {
                f(gs, depth);
                if let crate::stmt::Stmt::Loop(l) = &gs.stmt {
                    go(&l.body, depth + 1, f);
                }
            }
        }
        go(&self.body, 0, &mut f);
    }

    /// Total number of loops in the program.
    pub fn count_loops(&self) -> usize {
        let mut n = 0;
        self.walk(|gs, _| {
            if matches!(gs.stmt, crate::stmt::Stmt::Loop(_)) {
                n += 1;
            }
        });
        n
    }

    /// Number of *top-level* loop nests.
    pub fn count_nests(&self) -> usize {
        self.body.iter().filter(|gs| matches!(gs.stmt, crate::stmt::Stmt::Loop(_))).count()
    }

    /// Maximum loop nesting depth.
    pub fn max_depth(&self) -> usize {
        let mut m = 0;
        self.walk(|gs, d| {
            if matches!(gs.stmt, crate::stmt::Stmt::Loop(_)) {
                m = m.max(d + 1);
            }
        });
        m
    }

    /// Number of assignment statements.
    pub fn count_assigns(&self) -> usize {
        let mut n = 0;
        self.walk(|gs, _| {
            if matches!(gs.stmt, crate::stmt::Stmt::Assign(_)) {
                n += 1;
            }
        });
        n
    }

    /// Maps every statement id to the index of the *top-level* statement
    /// (computation phase) that contains it. The returned vector is indexed
    /// by [`StmtId::index`] and covers every id the program has handed out;
    /// ids of statements that were removed by a transformation map to
    /// phase 0.
    ///
    /// Profiling sinks use this to attribute memory accesses to phases —
    /// the granularity at which the paper's regrouping step partitions a
    /// program ("computation phases").
    pub fn phase_of_stmts(&self) -> Vec<usize> {
        fn mark(stmts: &[GuardedStmt], phase: usize, of: &mut [usize]) {
            for gs in stmts {
                match &gs.stmt {
                    crate::stmt::Stmt::Assign(a) => {
                        if let Some(slot) = of.get_mut(a.id.index()) {
                            *slot = phase;
                        }
                    }
                    crate::stmt::Stmt::Loop(l) => mark(&l.body, phase, of),
                }
            }
        }
        let mut of = vec![0usize; self.next_stmt as usize];
        for (k, gs) in self.body.iter().enumerate() {
            mark(std::slice::from_ref(gs), k, &mut of);
        }
        of
    }

    /// Human-readable label per top-level phase, aligned with
    /// [`Program::phase_of_stmts`]: `"k: for v"` for a loop nest over
    /// variable `v`, `"k: stmt"` for a standalone statement.
    pub fn phase_labels(&self) -> Vec<String> {
        self.body
            .iter()
            .enumerate()
            .map(|(k, gs)| match &gs.stmt {
                crate::stmt::Stmt::Loop(l) => format!("{k}: for {}", self.var(l.var).name),
                crate::stmt::Stmt::Assign(_) => format!("{k}: stmt"),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linexpr::LinExpr;

    #[test]
    fn id_round_trip() {
        let a = ArrayId::from_index(7);
        assert_eq!(a.index(), 7);
        assert_eq!(format!("{a:?}"), "ArrayId(7)");
    }

    #[test]
    fn lookup_by_name() {
        let mut p = Program::new("t");
        p.params.push(ParamDecl { name: "N".into() });
        let a = p.add_array("A", vec![LinExpr::param(ParamId::from_index(0))]);
        assert_eq!(p.param_by_name("N"), Some(ParamId::from_index(0)));
        assert_eq!(p.array_by_name("A"), Some(a));
        assert_eq!(p.array_by_name("B"), None);
        assert_eq!(p.array(a).rank(), 1);
    }

    #[test]
    fn fresh_ids_are_dense() {
        let mut p = Program::new("t");
        assert_eq!(p.fresh_stmt_id().index(), 0);
        assert_eq!(p.fresh_stmt_id().index(), 1);
        assert_eq!(p.fresh_ref_id().index(), 0);
        let v = p.fresh_var("i");
        assert_eq!(p.var(v).name, "i");
    }

    #[test]
    fn scalar_is_rank_zero() {
        let d = ArrayDecl { name: "s".into(), dims: vec![] };
        assert!(d.is_scalar());
        assert_eq!(d.rank(), 0);
    }
}
