//! Algebraic laws of the symbolic linear expressions.

use gcr_ir::ParamId;
use gcr_ir::{LinExpr, ParamBinding};
use proptest::prelude::*;

/// Arbitrary linear expression over two parameters.
fn lin() -> impl Strategy<Value = LinExpr> {
    (-50i64..50, -50i64..50, -100i64..100).prop_map(|(a, b, k)| {
        LinExpr::affine(ParamId::from_index(0), a, 0).add(&LinExpr::affine(
            ParamId::from_index(1),
            b,
            k,
        ))
    })
}

fn bindings() -> impl Strategy<Value = ParamBinding> {
    (1i64..100, 1i64..100).prop_map(|(x, y)| ParamBinding::new(vec![x, y]))
}

proptest! {
    /// Evaluation is a ring homomorphism: eval distributes over +, −, ·c.
    #[test]
    fn eval_homomorphism(a in lin(), b in lin(), s in -5i64..5, bind in bindings()) {
        prop_assert_eq!(a.add(&b).eval(&bind), a.eval(&bind) + b.eval(&bind));
        prop_assert_eq!(a.sub(&b).eval(&bind), a.eval(&bind) - b.eval(&bind));
        prop_assert_eq!(a.scale(s).eval(&bind), s * a.eval(&bind));
        prop_assert_eq!(a.add_const(s).eval(&bind), a.eval(&bind) + s);
    }

    /// Structural equality is semantic equality: a − a = 0, a + b − b = a.
    #[test]
    fn cancellation(a in lin(), b in lin()) {
        prop_assert_eq!(a.sub(&a), LinExpr::zero());
        prop_assert_eq!(a.add(&b).sub(&b), a.clone());
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    /// The large-parameter order is sound: when it says Less, evaluation at
    /// large parameter values agrees.
    #[test]
    fn large_order_sound(a in lin(), b in lin()) {
        if let Some(ord) = a.cmp_for_large_params(&b) {
            let big = ParamBinding::new(vec![1_000_000, 1_000]);
            // Single-parameter comparisons are decided by the dominant
            // parameter; skip genuinely mixed cases (the implementation
            // returns None for those).
            let d = a.sub(&b);
            if d.terms().len() <= 1 {
                let (x, y) = (a.eval(&big), b.eval(&big));
                match ord {
                    std::cmp::Ordering::Less => prop_assert!(x < y, "{a:?} vs {b:?}"),
                    std::cmp::Ordering::Greater => prop_assert!(x > y, "{a:?} vs {b:?}"),
                    std::cmp::Ordering::Equal => prop_assert_eq!(x, y),
                }
            }
        }
    }

    /// min/max under the large order bracket both operands.
    #[test]
    fn min_max_bracket(a in lin(), b in lin()) {
        if let (Some(lo), Some(hi)) = (a.min_large(&b), a.max_large(&b)) {
            let big = ParamBinding::new(vec![999_983, 1_009]);
            if a.sub(&b).terms().len() <= 1 {
                prop_assert!(lo.eval(&big) <= hi.eval(&big));
                prop_assert!(lo.eval(&big) <= a.eval(&big) && lo.eval(&big) <= b.eval(&big));
                prop_assert!(hi.eval(&big) >= a.eval(&big) && hi.eval(&big) >= b.eval(&big));
            }
        }
    }
}
