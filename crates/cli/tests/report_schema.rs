//! Golden-file test for the `gcr-report/v1` JSON schema: a fixed program
//! is optimized, profiled and simulated deterministically, wall-clock
//! fields are normalized to zero, and the serialized report is compared
//! byte-for-byte against `tests/golden/report.json`.
//!
//! On intentional schema changes, regenerate the golden file with
//! `GCR_BLESS=1 cargo test -p gcr-cli --test report_schema` and review the
//! diff (EXPERIMENTS.md documents the schema and must be updated too).

use gcr_cache::{MemoryHierarchy, PhasedHierarchySink};
use gcr_cli::report::{ProfileSection, SimSection};
use gcr_cli::Report;
use gcr_core::checked::SafetyOptions;
use gcr_core::pipeline::Strategy;
use gcr_core::Tracer;
use gcr_exec::Machine;
use gcr_ir::ParamBinding;

const SRC: &str = "
program golden
param N
array A[N], B[N]

for i = 1, N {
  A[i] = f(A[i])
}
for i = 1, N {
  B[i] = g(A[i], B[i])
}
";

const SIZE: i64 = 32;

fn build_report() -> Report {
    let prog = gcr_frontend::parse(SRC).unwrap();
    let strategy = Strategy::FusionOnly { levels: 3 };
    let mut tracer = Tracer::enabled();
    let opt = gcr_core::apply_strategy_checked_traced(
        &prog,
        strategy,
        &SafetyOptions::default(),
        &mut tracer,
    )
    .unwrap();
    let mut report =
        Report::new("golden-test", &prog, strategy.label(), &opt, tracer.into_events());

    let bind = ParamBinding::new(vec![SIZE]);
    let layout = opt.layout(&bind);
    let mut m = Machine::with_layout(&opt.program, bind.clone(), layout.clone());
    let mut sink = gcr_reuse::ProfileSink::elements(&opt.program);
    m.run(&mut sink);
    report.profile = Some(ProfileSection { size: SIZE, steps: 1, profile: sink.finish() });

    let mut m = Machine::with_layout(&opt.program, bind, layout);
    let mut sink =
        PhasedHierarchySink::new(MemoryHierarchy::origin2000_scaled(16, 64), &opt.program);
    m.run(&mut sink);
    let total = sink.hierarchy.counts();
    report.simulation = Some(SimSection {
        size: SIZE,
        steps: 1,
        cycles: gcr_cache::CostModel::default().cycles(&m.stats(), &total),
        flops: m.stats().flops,
        total,
        phases: sink.phases(),
    });
    report
}

#[test]
fn report_json_matches_golden() {
    let json = build_report().normalized().to_json();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/report.json");
    if std::env::var_os("GCR_BLESS").is_some() {
        std::fs::write(path, &json).unwrap();
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden file missing — run once with GCR_BLESS=1 to create it");
    assert_eq!(
        json, golden,
        "JSON report schema drifted from tests/golden/report.json; if the \
         change is intentional, bless with GCR_BLESS=1 and update EXPERIMENTS.md"
    );
}

/// Same workflow for the static-prediction section: probe simulations and
/// polynomial fitting are fully deterministic (no wall-clock state inside
/// the section), so a report carrying a `prediction` — closed-form model
/// strings included — is golden-tested byte-for-byte too.
#[test]
fn static_prediction_report_matches_golden() {
    let prog = gcr_frontend::parse(SRC).unwrap();
    let strategy = Strategy::FusionOnly { levels: 3 };
    let mut tracer = Tracer::disabled();
    let opt = gcr_core::apply_strategy_checked_traced(
        &prog,
        strategy,
        &SafetyOptions::default(),
        &mut tracer,
    )
    .unwrap();
    let mut report =
        Report::new("golden-test", &prog, strategy.label(), &opt, tracer.into_events());

    let spec = gcr_static::SweepSpec::new(32, vec![256, 1024], 1);
    let a = gcr_static::Analyzer::analyze_with(
        &opt.program,
        spec,
        gcr_exec::ExecEngine::default(),
        gcr_static::DEFAULT_PROBE_FUEL,
        |b| opt.layout(b),
    )
    .unwrap();
    let p = a.predict(1_000_000).unwrap();
    let m = a.model();
    report.prediction = Some(gcr_cli::report::PredictionSection {
        size: p.size,
        steps: p.steps,
        line: m.spec.line,
        method: p.method.name().into(),
        class: p.class.name().into(),
        tolerance: p.tolerance,
        degree: m.degree,
        period: m.period,
        regime_base: m.base,
        probe_sims: m.probe_sims,
        refs: p.refs,
        capacities: p
            .capacities
            .iter()
            .enumerate()
            .map(|(ci, cp)| gcr_cli::report::PredictionEntry {
                capacity: cp.capacity,
                misses: cp.misses,
                model: m.capacities[ci].global.render_at("N", p.size),
                per_array: cp
                    .per_array
                    .iter()
                    .enumerate()
                    .map(|(ai, &mi)| (opt.program.arrays[ai].name.clone(), mi))
                    .collect(),
            })
            .collect(),
    });

    let json = report.normalized().to_json();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/report_static.json");
    if std::env::var_os("GCR_BLESS").is_some() {
        std::fs::write(path, &json).unwrap();
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden file missing — run once with GCR_BLESS=1 to create it");
    assert_eq!(
        json, golden,
        "static-prediction report drifted from tests/golden/report_static.json; \
         if the change is intentional, bless with GCR_BLESS=1 and update EXPERIMENTS.md"
    );
}

#[test]
fn normalization_only_touches_wall_clock() {
    let a = build_report();
    let b = a.clone().normalized();
    assert!(b.trace.iter().all(|e| e.wall_ns == 0));
    let strip = |r: &Report| {
        let mut r = r.clone();
        for e in &mut r.trace {
            e.wall_ns = 0;
        }
        r
    };
    assert_eq!(strip(&a), b, "normalized() must not change any other field");
}
