#![warn(missing_docs)]

//! `gcrc` — the command-line driver for the global-cache-reuse optimizer.
//!
//! ```text
//! gcrc program.loop                         # optimize and print the program
//! gcrc program.loop --strategy fuse         # fusion only
//! gcrc program.loop --summary               # transformation statistics
//! gcrc program.loop --trace                 # per-pass trace (time, IR deltas)
//! gcrc program.loop --simulate 257 --steps 3  # run through the cache simulator
//! gcrc program.loop --profile               # reuse-distance profile
//! gcrc program.loop --report out.json       # machine-readable JSON report
//! gcrc program.loop --stats                 # static program statistics
//! ```
//!
//! The driver is a thin, testable layer over the library crates: parse →
//! preliminary transformations → reuse-based loop fusion → multi-level data
//! regrouping → (optionally) execute on the simulated memory hierarchy.
//! The [`report`] module defines the JSON artifact schema shared with the
//! experiment binaries (see EXPERIMENTS.md).

pub mod report;

use gcr_cache::{CostModel, MemoryHierarchy, PhasedHierarchySink};
use gcr_core::checked::{apply_strategy_checked_traced, SafetyOptions};
use gcr_core::pipeline::Strategy;
use gcr_core::regroup::RegroupLevel;
use gcr_core::Tracer;
use gcr_exec::{ExecEngine, Machine};
use gcr_ir::{GcrError, ParamBinding};
pub use report::{Report, ReportSet, SweepTiming};
use std::fmt::Write as _;

/// Parsed command line.
#[derive(Clone, Debug)]
pub struct Options {
    /// Input path (or `-` reads stdin; tests pass source directly).
    pub input: String,
    /// Which program version to produce.
    pub strategy: Strategy,
    /// Print the transformed program text.
    pub emit: bool,
    /// Print transformation statistics.
    pub summary: bool,
    /// Print the per-pass trace (wall time, IR size deltas, outcomes).
    pub trace: bool,
    /// Measure a reuse-distance profile of the transformed program
    /// (per-array and per-phase histograms).
    pub profile: bool,
    /// Write a machine-readable JSON report here (`-` appends to stdout).
    pub report_path: Option<String>,
    /// Print static program statistics (Figure 9 style).
    pub stats: bool,
    /// Print per-loop data footprints of the *input* program.
    pub footprints: bool,
    /// Statically check array bounds of input and output programs.
    pub check: bool,
    /// Emit the data-sharing graph of the input program in Graphviz DOT.
    pub dot: bool,
    /// Simulate execution at this size parameter.
    pub simulate: Option<i64>,
    /// Statically predict the capacity sweep at this size parameter
    /// (symbolic reuse model, no trace simulation at the target size).
    pub static_n: Option<i64>,
    /// Time steps for simulation.
    pub steps: usize,
    /// Measure the reuse-distance histogram at this size.
    pub reuse_hist: Option<i64>,
    /// Print the predicted miss-ratio curve at this size.
    pub mrc: Option<i64>,
    /// Cache scale factors (L1/TLB, L2) for simulation.
    pub cache_scale: (usize, usize),
    /// Treat the first optimizer fault as fatal (no degradation ladder).
    pub strict: bool,
    /// Degrade to weaker strategies on optimizer faults (disabled by
    /// `--no-fallback`: stop at the last good program instead).
    pub fallback: bool,
    /// Interpreter fuel budget for oracle checks and `--simulate` runs.
    pub fuel: Option<u64>,
    /// Execution engine for `--simulate`, `--profile`, `--reuse-hist` and
    /// `--mrc` runs (`None` defers to `GCR_EXEC` / the compiled default).
    pub exec: Option<ExecEngine>,
    /// Realistic hierarchy descriptor to measure (`--hierarchy`), e.g.
    /// `l1=8K/32/4,l2=64K/128/fa,prefetch=next-line`.
    pub hierarchy: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            input: String::new(),
            strategy: Strategy::FusionRegroup { levels: 3, regroup: RegroupLevel::Multi },
            emit: true,
            summary: false,
            trace: false,
            profile: false,
            report_path: None,
            stats: false,
            footprints: false,
            check: false,
            dot: false,
            simulate: None,
            static_n: None,
            steps: 1,
            reuse_hist: None,
            mrc: None,
            cache_scale: (1, 1),
            strict: false,
            fallback: true,
            fuel: None,
            exec: None,
            hierarchy: None,
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
usage: gcrc <file.loop> [options]

options:
  --strategy <s>     original | sgi | fuse | fuse1 | fuse+group (default) | group
  --no-emit          do not print the transformed program
  --summary          print transformation statistics
  --trace            print the per-pass trace (wall time, IR size deltas)
  --profile          measure a reuse-distance profile of the transformed
                     program (per-array and per-phase histograms); uses the
                     --simulate size, or N=64
  --report <path>    write a machine-readable JSON report (schema
                     gcr-report/v1; `-` appends it to stdout)
  --stats            print static program statistics
  --footprints       print per-loop data footprints of the input program
  --check            statically check array bounds (input and output)
  --dot              emit the input's data-sharing graph (Graphviz DOT)
  --simulate <N>     execute at size N through the simulated memory hierarchy
  --static <N>       predict the capacity sweep at size N analytically:
                     fit per-capacity miss polynomials in N from a few small
                     probe runs, then evaluate them at N (32-byte lines,
                     capacities 256B/1KB/4KB/16KB); N can be far beyond
                     what --simulate could ever execute
  --steps <K>        time steps for --simulate (default 1)
  --hierarchy <desc> measure a realistic multi-level hierarchy at the
                     --simulate size (or N=64): comma-separated
                     l1=SIZE/LINE/ASSOC[,l2=...][,l3=...]
                     [,policy=inclusive|exclusive]
                     [,prefetch=none|next-line]; sizes take K/M suffixes,
                     ASSOC is a way count or `fa`; adds FA + 4-way sweep
                     bins and a hierarchy report section
  --cache-scale <a,b>  shrink L1/TLB by a and L2 by b during --simulate
  --reuse-hist <N>   print the reuse-distance histogram at size N
  --mrc <N>          print the predicted miss-ratio curve at size N
  --strict           treat the first optimizer fault as fatal
  --no-fallback      do not degrade to weaker strategies on faults;
                     stop at the last verified program instead
  --fuel <N>         interpreter step budget for semantic checks and
                     --simulate (terminates runaway programs)
  --exec <engine>    execution engine for measurement runs: vm (default;
                     register bytecode VM with superinstructions and
                     strip execution), compiled (bytecode tape with
                     affine address walkers), or interp (the reference
                     tree-walking interpreter); overrides GCR_EXEC
";

fn usage_err(msg: String) -> GcrError {
    GcrError::Usage(msg)
}

/// Parses the command line. Returns [`GcrError::Usage`] (with the usage
/// text) on bad input.
pub fn parse_args(args: &[String]) -> Result<Options, GcrError> {
    let mut o = Options::default();
    let mut it = args.iter().peekable();
    let value = |it: &mut std::iter::Peekable<std::slice::Iter<String>>, flag: &str| {
        it.next().cloned().ok_or_else(|| usage_err(format!("{flag} needs a value\n{USAGE}")))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--strategy" => {
                let name = value(&mut it, "--strategy")?;
                o.strategy = Strategy::from_name(&name)
                    .ok_or_else(|| usage_err(format!("unknown strategy `{name}`\n{USAGE}")))?;
            }
            "--no-emit" => o.emit = false,
            "--summary" => o.summary = true,
            "--trace" => o.trace = true,
            "--profile" => o.profile = true,
            "--report" => o.report_path = Some(value(&mut it, "--report")?),
            "--stats" => o.stats = true,
            "--footprints" => o.footprints = true,
            "--check" => o.check = true,
            "--dot" => o.dot = true,
            "--simulate" => {
                o.simulate = Some(
                    value(&mut it, "--simulate")?
                        .parse()
                        .map_err(|e| usage_err(format!("bad --simulate value: {e}")))?,
                )
            }
            "--static" => {
                o.static_n = Some(
                    value(&mut it, "--static")?
                        .parse()
                        .map_err(|e| usage_err(format!("bad --static value: {e}")))?,
                )
            }
            "--steps" => {
                o.steps = value(&mut it, "--steps")?
                    .parse()
                    .map_err(|e| usage_err(format!("bad --steps value: {e}")))?
            }
            "--hierarchy" => o.hierarchy = Some(value(&mut it, "--hierarchy")?),
            "--cache-scale" => {
                let v = value(&mut it, "--cache-scale")?;
                let (a, b) = v
                    .split_once(',')
                    .ok_or_else(|| usage_err("cache-scale wants `a,b`".to_string()))?;
                o.cache_scale = (
                    a.parse().map_err(|e| usage_err(format!("bad cache scale: {e}")))?,
                    b.parse().map_err(|e| usage_err(format!("bad cache scale: {e}")))?,
                );
            }
            "--reuse-hist" => {
                o.reuse_hist = Some(
                    value(&mut it, "--reuse-hist")?
                        .parse()
                        .map_err(|e| usage_err(format!("bad --reuse-hist value: {e}")))?,
                )
            }
            "--mrc" => {
                o.mrc = Some(
                    value(&mut it, "--mrc")?
                        .parse()
                        .map_err(|e| usage_err(format!("bad --mrc value: {e}")))?,
                )
            }
            "--exec" => {
                let name = value(&mut it, "--exec")?;
                o.exec = Some(ExecEngine::parse(&name).ok_or_else(|| {
                    usage_err(format!(
                        "unknown engine `{name}`: valid engines are {}\n{USAGE}",
                        ExecEngine::NAMES
                    ))
                })?);
            }
            "--strict" => o.strict = true,
            "--no-fallback" => o.fallback = false,
            "--fuel" => {
                o.fuel = Some(
                    value(&mut it, "--fuel")?
                        .parse()
                        .map_err(|e| usage_err(format!("bad --fuel value: {e}")))?,
                )
            }
            "--help" | "-h" => return Err(usage_err(USAGE.to_string())),
            "-" => {
                if !o.input.is_empty() {
                    return Err(usage_err(format!("multiple input files\n{USAGE}")));
                }
                o.input = "-".to_string();
            }
            flag if flag.starts_with('-') => {
                return Err(usage_err(format!("unknown option `{flag}`\n{USAGE}")))
            }
            path => {
                if !o.input.is_empty() {
                    return Err(usage_err(format!("multiple input files\n{USAGE}")));
                }
                o.input = path.to_string();
            }
        }
    }
    if o.input.is_empty() {
        return Err(usage_err(format!("no input file\n{USAGE}")));
    }
    Ok(o)
}

/// The safety configuration a command line implies.
fn safety_of(o: &Options) -> SafetyOptions {
    SafetyOptions { strict: o.strict, fallback: o.fallback, fuel: o.fuel, ..Default::default() }
}

/// Runs the driver over already-loaded source text, returning the output.
pub fn run_source(src: &str, o: &Options) -> Result<String, GcrError> {
    run_source_with_diagnostics(src, o).map(|(out, _)| out)
}

/// Like [`run_source`], but also returns the fail-safe pipeline's fallback
/// diagnostics (one human-readable line per degradation), which `main`
/// prints to stderr.
pub fn run_source_with_diagnostics(
    src: &str,
    o: &Options,
) -> Result<(String, Vec<String>), GcrError> {
    let prog = gcr_frontend::parse(src)?;
    let mut out = String::new();
    if o.stats {
        let st = gcr_analysis::stats::program_stats(&prog);
        let _ = writeln!(
            out,
            "program {}: {} lines, {} loops in {} nests (depth {}-{}), {} arrays, {} scalars",
            st.name,
            st.lines,
            st.loops,
            st.nests,
            st.min_depth,
            st.max_depth,
            st.arrays,
            st.scalars
        );
    }
    if o.footprints {
        let _ = write!(out, "{}", gcr_analysis::summary::render_footprints(&prog));
    }
    if o.dot {
        let _ = write!(out, "{}", gcr_analysis::graph::render_dot(&prog));
    }
    let mut tracer =
        if o.trace || o.report_path.is_some() { Tracer::enabled() } else { Tracer::disabled() };
    let opt = apply_strategy_checked_traced(&prog, o.strategy, &safety_of(o), &mut tracer)?;
    let diagnostics = opt.robustness.describe();
    if o.trace {
        let _ = writeln!(out, "pass trace ({} checkpoints):", opt.robustness.checks);
        for ev in tracer.events() {
            let _ = writeln!(out, "  {}", ev.describe());
        }
    }
    let mut rep = o
        .report_path
        .is_some()
        .then(|| Report::new("gcrc", &prog, o.strategy.label(), &opt, tracer.into_events()));
    if o.check {
        for (which, p) in [("input", &prog), ("output", &opt.program)] {
            let issues = gcr_analysis::bounds::check_bounds(p);
            if issues.is_empty() {
                let _ = writeln!(out, "bounds check ({which}): ok");
            } else {
                for i in &issues {
                    let _ = writeln!(out, "bounds check ({which}): {i}");
                }
            }
        }
    }
    if o.emit {
        let _ = write!(out, "{}", gcr_ir::print::print_program(&opt.program));
    }
    if o.summary {
        let f = &opt.fusion;
        let _ = writeln!(
            out,
            "prelim: {} loops unrolled, {} arrays from splitting, {} loops from distribution",
            opt.prelim.unrolled, opt.prelim.split_arrays, opt.prelim.distributed
        );
        let _ = writeln!(
            out,
            "fusion: {:?} -> {:?} loops per level; {} fused, {} embedded, {} peeled",
            f.loops_before,
            f.loops_after,
            f.total_fused(),
            f.embedded,
            f.peeled
        );
        if !f.infusible.is_empty() {
            let _ = writeln!(out, "infusible: {}", f.infusible.join("; "));
        }
        if opt.plan.is_some() {
            let _ = writeln!(
                out,
                "regrouping: {} arrays -> {} allocations",
                opt.regroup.arrays, opt.regroup.allocations
            );
            for (names, _) in &opt.regroup.groups {
                let _ = writeln!(out, "  group: {}", names.join(", "));
            }
        }
    }
    let fuel = o.fuel.unwrap_or(u64::MAX);
    let engine = match o.exec {
        Some(e) => e,
        None => ExecEngine::from_env()?,
    };
    if let Some(n) = o.simulate {
        let bind = binding_for(&prog, n);
        let layout = opt.layout(&bind);
        let mut m = Machine::with_layout(&opt.program, bind, layout).with_engine(engine);
        let mut sink = PhasedHierarchySink::new(
            MemoryHierarchy::origin2000_scaled(o.cache_scale.0, o.cache_scale.1),
            &opt.program,
        );
        // `--profile` alongside `--simulate` shares this interpreter pass:
        // a tee feeds the profiler from the same address stream instead of
        // re-running the program.
        let mut psink = o.profile.then(|| gcr_reuse::ProfileSink::elements(&opt.program));
        match psink.as_mut() {
            Some(p) => {
                let mut tee = SinkPair { a: &mut sink, b: p };
                m.run_steps_guarded(&mut tee, o.steps, fuel)?;
            }
            None => m.run_steps_guarded(&mut sink, o.steps, fuel)?,
        }
        let c = sink.hierarchy.counts();
        let cycles = CostModel::default().cycles(&m.stats(), &c);
        let _ = writeln!(
            out,
            "simulate N={n} x{}: {} refs, L1 miss {} ({:.2}%), L2 miss {}, TLB miss {}, \
             traffic {} KB, {:.3e} cycles",
            o.steps,
            c.refs,
            c.l1,
            100.0 * c.l1_rate(),
            c.l2,
            c.tlb,
            c.memory_traffic / 1024,
            cycles
        );
        if let Some(r) = rep.as_mut() {
            r.simulation = Some(report::SimSection {
                size: n,
                steps: o.steps,
                cycles,
                flops: m.stats().flops,
                total: c,
                phases: sink.phases(),
            });
        }
        if let Some(p) = psink {
            let section = report::ProfileSection { size: n, steps: o.steps, profile: p.finish() };
            let _ = write!(out, "{}", section.to_text());
            if let Some(r) = rep.as_mut() {
                r.profile = Some(section);
            }
        }
    } else if o.profile {
        let n = 64;
        let bind = binding_for(&prog, n);
        let layout = opt.layout(&bind);
        let mut m = Machine::with_layout(&opt.program, bind, layout).with_engine(engine);
        let mut sink = gcr_reuse::ProfileSink::elements(&opt.program);
        m.run_steps_guarded(&mut sink, o.steps, fuel)?;
        let section = report::ProfileSection { size: n, steps: o.steps, profile: sink.finish() };
        let _ = write!(out, "{}", section.to_text());
        if let Some(r) = rep.as_mut() {
            r.profile = Some(section);
        }
    }
    if let Some(desc) = &o.hierarchy {
        let spec = gcr_cache::HierarchySpec::parse(desc)
            .map_err(|why| usage_err(format!("bad --hierarchy descriptor: {why}\n{USAGE}")))?;
        let n = o.simulate.unwrap_or(64);
        let bind = binding_for(&prog, n);
        let layout = opt.layout(&bind);
        let run =
            gcr_cache::measure_hierarchy(&opt.program, bind, layout, engine, o.steps, fuel, &spec)?;
        let section = report::HierarchySection { size: n, steps: o.steps, run };
        out.push_str(&section.to_text());
        if let Some(r) = rep.as_mut() {
            r.hierarchy = Some(section);
        }
    }
    if let Some(n) = o.static_n {
        let spec = gcr_static::SweepSpec {
            line: 32,
            capacities: vec![256, 1024, 4096, 16384],
            steps: o.steps,
        };
        let analyzer = gcr_static::Analyzer::analyze_with(
            &opt.program,
            spec,
            engine,
            o.fuel.unwrap_or(gcr_static::DEFAULT_PROBE_FUEL),
            |b| opt.layout(b),
        );
        match analyzer.and_then(|a| a.predict(n).map(|p| prediction_section(&a, &opt.program, p))) {
            Ok(section) => {
                let _ = write!(out, "{}", section.to_text());
                if let Some(r) = rep.as_mut() {
                    r.prediction = Some(section);
                }
            }
            Err(gcr_static::StaticError::NotAnalyzable { reason }) => {
                let _ = writeln!(out, "static prediction unavailable: {reason}");
            }
            Err(gcr_static::StaticError::Gcr(e)) => return Err(e),
        }
    }
    if let Some(n) = o.reuse_hist {
        let bind = binding_for(&prog, n);
        let layout = opt.layout(&bind);
        let mut m = Machine::with_layout(&opt.program, bind, layout).with_engine(engine);
        let mut sink = gcr_reuse::DistanceSink::elements();
        m.run_guarded(&mut sink, fuel)?;
        let h = &sink.analyzer.hist;
        let _ = writeln!(out, "reuse distances at N={n} (log2 bins):");
        for (bin, count) in h.points() {
            let _ = writeln!(out, "  2^{bin:<2} {count}");
        }
        let _ = writeln!(out, "  cold {}", h.cold);
    }
    if let Some(n) = o.mrc {
        let bind = binding_for(&prog, n);
        let layout = opt.layout(&bind);
        let mut m = Machine::with_layout(&opt.program, bind, layout).with_engine(engine);
        let mut sink = gcr_reuse::DistanceSink::elements();
        m.run_guarded(&mut sink, fuel)?;
        let _ = writeln!(
            out,
            "predicted miss ratio by cache capacity (fully associative LRU, elements):"
        );
        for (cap, ratio) in gcr_reuse::miss_ratio_curve(&sink.analyzer.hist) {
            let _ = writeln!(out, "  {:>10} {:>7.3}%", cap, 100.0 * ratio);
        }
    }
    if let (Some(r), Some(path)) = (rep, o.report_path.as_ref()) {
        let json = r.to_json();
        if path == "-" {
            out.push_str(&json);
        } else {
            std::fs::write(path, &json)
                .map_err(|e| GcrError::Io { path: path.clone(), why: e.to_string() })?;
            let _ = writeln!(out, "report written to {path}");
        }
    }
    Ok((out, diagnostics))
}

fn binding_for(prog: &gcr_ir::Program, n: i64) -> ParamBinding {
    ParamBinding::new(vec![n; prog.params.len()])
}

/// Converts a `gcr-static` prediction (plus its model's closed forms) into
/// the report section.
fn prediction_section(
    a: &gcr_static::Analyzer<'_>,
    prog: &gcr_ir::Program,
    p: gcr_static::Prediction,
) -> report::PredictionSection {
    let m = a.model();
    let var = prog.params.first().map_or("N", |d| d.name.as_str());
    report::PredictionSection {
        size: p.size,
        steps: p.steps,
        line: m.spec.line,
        method: p.method.name().into(),
        class: p.class.name().into(),
        tolerance: p.tolerance,
        degree: m.degree,
        period: m.period,
        regime_base: m.base,
        probe_sims: m.probe_sims,
        refs: p.refs,
        capacities: p
            .capacities
            .iter()
            .enumerate()
            .map(|(ci, cp)| report::PredictionEntry {
                capacity: cp.capacity,
                misses: cp.misses,
                model: m.capacities[ci].global.render_at(var, p.size),
                per_array: cp
                    .per_array
                    .iter()
                    .enumerate()
                    .map(|(ai, &mi)| (prog.arrays[ai].name.clone(), mi))
                    .collect(),
            })
            .collect(),
    }
}

/// Feeds one interpreter pass to two sinks — how `--simulate --profile`
/// measures both from a single run.
struct SinkPair<'a, A: gcr_exec::TraceSink, B: gcr_exec::TraceSink> {
    a: &'a mut A,
    b: &'a mut B,
}

impl<A: gcr_exec::TraceSink, B: gcr_exec::TraceSink> gcr_exec::TraceSink for SinkPair<'_, A, B> {
    #[inline]
    fn access(&mut self, ev: gcr_exec::AccessEvent) {
        self.a.access(ev);
        self.b.access(ev);
    }

    fn end_instance(&mut self, stmt: gcr_ir::StmtId) {
        self.a.end_instance(stmt);
        self.b.end_instance(stmt);
    }

    fn record_batch(&mut self, batch: &gcr_exec::TraceBatch<'_>) {
        // Forward the batch whole so both sides keep their fast paths.
        self.a.record_batch(batch);
        self.b.record_batch(batch);
    }
}

/// Entry point used by `main`: loads the file and runs. The second element
/// of the result is the fallback diagnostics for stderr.
pub fn run(args: &[String]) -> Result<(String, Vec<String>), GcrError> {
    let o = parse_args(args)?;
    let src = if o.input == "-" {
        use std::io::Read;
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .map_err(|e| GcrError::Io { path: "<stdin>".into(), why: e.to_string() })?;
        s
    } else {
        std::fs::read_to_string(&o.input)
            .map_err(|e| GcrError::Io { path: o.input.clone(), why: e.to_string() })?
    };
    run_source_with_diagnostics(&src, &o)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "
program demo
param N
array A[N], B[N]

for i = 1, N {
  A[i] = f(A[i])
}
for i = 1, N {
  B[i] = g(A[i], B[i])
}
";

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_flags() {
        let o = parse_args(&args(&[
            "x.loop",
            "--strategy",
            "fuse",
            "--summary",
            "--simulate",
            "64",
            "--steps",
            "2",
            "--cache-scale",
            "4,16",
        ]))
        .unwrap();
        assert_eq!(o.input, "x.loop");
        assert_eq!(o.strategy, Strategy::FusionOnly { levels: 3 });
        assert!(o.summary);
        assert_eq!(o.simulate, Some(64));
        assert_eq!(o.steps, 2);
        assert_eq!(o.cache_scale, (4, 16));
    }

    #[test]
    fn parses_observability_flags() {
        let o =
            parse_args(&args(&["x.loop", "--trace", "--profile", "--report", "out.json"])).unwrap();
        assert!(o.trace);
        assert!(o.profile);
        assert_eq!(o.report_path.as_deref(), Some("out.json"));
        assert!(parse_args(&args(&["x.loop", "--report"])).is_err(), "--report needs a path");
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&args(&[])).is_err());
        assert!(parse_args(&args(&["a", "b"])).is_err());
        assert!(parse_args(&args(&["a", "--strategy", "zap"])).is_err());
        assert!(parse_args(&args(&["a", "--bogus"])).is_err());
        assert!(parse_args(&args(&["a", "--simulate"])).is_err());
    }

    #[test]
    fn emits_fused_program() {
        let mut o = parse_args(&args(&["-", "--strategy", "fuse", "--summary"])).unwrap();
        o.input = "mem".into();
        let out = run_source(SRC, &o).unwrap();
        assert!(out.contains("for i = 1, N {"), "{out}");
        assert!(out.contains("fusion: [2] -> [1] loops per level"), "{out}");
    }

    #[test]
    fn simulates_and_reports_misses() {
        let mut o = parse_args(&args(&["-", "--no-emit", "--simulate", "128"])).unwrap();
        o.input = "mem".into();
        let out = run_source(SRC, &o).unwrap();
        assert!(out.contains("simulate N=128"), "{out}");
        assert!(out.contains("L1 miss"), "{out}");
    }

    #[test]
    fn parses_static_flag() {
        let o = parse_args(&args(&["x.loop", "--static", "1000000000"])).unwrap();
        assert_eq!(o.static_n, Some(1_000_000_000));
        assert!(parse_args(&args(&["x.loop", "--static"])).is_err(), "--static needs a value");
        assert!(parse_args(&args(&["x.loop", "--static", "many"])).is_err());
    }

    #[test]
    fn static_prediction_output() {
        let mut o = parse_args(&args(&["-", "--no-emit", "--static", "1000000000"])).unwrap();
        o.input = "mem".into();
        let out = run_source(SRC, &o).unwrap();
        assert!(out.contains("prediction at N=1000000000"), "{out}");
        assert!(out.contains("capacity"), "{out}");
        assert!(out.contains("misses(N) ="), "{out}");
    }

    #[test]
    fn static_prediction_in_report_schema() {
        let mut o =
            parse_args(&args(&["-", "--no-emit", "--static", "100000", "--report", "-"])).unwrap();
        o.input = "mem".into();
        let out = run_source(SRC, &o).unwrap();
        assert!(out.contains("\"prediction\""), "{out}");
        assert!(out.contains("\"class\""), "{out}");
        assert!(out.contains("\"capacity_bytes\""), "{out}");
        assert!(out.contains("\"model\""), "{out}");
    }

    #[test]
    fn reuse_histogram_output() {
        let mut o = parse_args(&args(&["-", "--no-emit", "--reuse-hist", "64"])).unwrap();
        o.input = "mem".into();
        let out = run_source(SRC, &o).unwrap();
        assert!(out.contains("reuse distances at N=64"), "{out}");
        assert!(out.contains("cold"), "{out}");
    }

    #[test]
    fn stats_line() {
        let mut o = parse_args(&args(&["-", "--no-emit", "--stats"])).unwrap();
        o.input = "mem".into();
        let out = run_source(SRC, &o).unwrap();
        assert!(out.contains("2 loops in 2 nests"), "{out}");
    }

    #[test]
    fn dot_output() {
        let mut o = parse_args(&args(&["-", "--no-emit", "--dot"])).unwrap();
        o.input = "mem".into();
        let out = run_source(SRC, &o).unwrap();
        assert!(out.contains("digraph sharing"), "{out}");
        assert!(out.contains("n0 -> n1"), "{out}");
    }

    #[test]
    fn check_reports_bounds() {
        let mut o = parse_args(&args(&["-", "--no-emit", "--check"])).unwrap();
        o.input = "mem".into();
        let out = run_source(SRC, &o).unwrap();
        assert!(out.contains("bounds check (input): ok"), "{out}");
        assert!(out.contains("bounds check (output): ok"), "{out}");
        let bad = "
program bad
param N
array A[N]
for i = 1, N {
  A[i+1] = 0.0
}
";
        let out = run_source(bad, &o).unwrap();
        assert!(out.contains("upper bound"), "{out}");
    }

    #[test]
    fn footprints_output() {
        let mut o = parse_args(&args(&["-", "--no-emit", "--footprints"])).unwrap();
        o.input = "mem".into();
        let out = run_source(SRC, &o).unwrap();
        assert!(out.contains("loop [0]"), "{out}");
        assert!(out.contains("rw"), "{out}");
    }

    #[test]
    fn mrc_output() {
        let mut o = parse_args(&args(&["-", "--no-emit", "--mrc", "64"])).unwrap();
        o.input = "mem".into();
        let out = run_source(SRC, &o).unwrap();
        assert!(out.contains("predicted miss ratio"), "{out}");
    }

    #[test]
    fn parse_errors_are_reported() {
        let o = parse_args(&args(&["mem"])).unwrap();
        let err = run_source("program x\nfor {", &o).unwrap_err();
        assert!(matches!(err, GcrError::Parse { .. }), "{err}");
        assert!(err.to_string().contains("parse error"), "{err}");
    }

    #[test]
    fn parses_safety_flags() {
        let o =
            parse_args(&args(&["x.loop", "--strict", "--no-fallback", "--fuel", "5000"])).unwrap();
        assert!(o.strict);
        assert!(!o.fallback);
        assert_eq!(o.fuel, Some(5000));
        assert!(parse_args(&args(&["x.loop", "--fuel", "lots"])).is_err());
    }

    #[test]
    fn parses_exec_flag() {
        let o = parse_args(&args(&["x.loop", "--exec", "interp"])).unwrap();
        assert_eq!(o.exec, Some(ExecEngine::Interp));
        let o = parse_args(&args(&["x.loop", "--exec", "compiled"])).unwrap();
        assert_eq!(o.exec, Some(ExecEngine::Compiled));
        let o = parse_args(&args(&["x.loop", "--exec", "vm"])).unwrap();
        assert_eq!(o.exec, Some(ExecEngine::Vm));
        assert_eq!(parse_args(&args(&["x.loop"])).unwrap().exec, None);
        let err = parse_args(&args(&["x.loop", "--exec", "jit"])).unwrap_err();
        assert!(
            err.to_string().contains("interp|compiled|vm"),
            "rejection must list valid engines: {err}"
        );
        assert!(parse_args(&args(&["x.loop", "--exec"])).is_err());
    }

    #[test]
    fn hierarchy_flag_measures_and_reports() {
        let mut o = parse_args(&args(&[
            "-",
            "--no-emit",
            "--simulate",
            "64",
            "--hierarchy",
            "l1=1K/32/4,l2=8K/128/fa,prefetch=next-line",
            "--report",
            "-",
        ]))
        .unwrap();
        o.input = "mem".into();
        let out = run_source(SRC, &o).unwrap();
        assert!(
            out.contains("hierarchy l1=1K/32/4,l2=8K/128/fa,policy=inclusive,prefetch=next-line"),
            "{out}"
        );
        assert!(out.contains("\"hierarchy\""), "{out}");
        assert!(out.contains("\"assoc_misses\""), "{out}");
        assert!(out.contains("\"prefetches\""), "{out}");
    }

    #[test]
    fn hierarchy_flag_rejects_bad_descriptors() {
        let mut o = parse_args(&args(&["-", "--no-emit", "--hierarchy", "l1=8K/33/4"])).unwrap();
        o.input = "mem".into();
        let err = run_source(SRC, &o).unwrap_err();
        assert!(matches!(err, GcrError::Usage(_)), "{err}");
    }

    #[test]
    fn engines_agree_on_hierarchy_output() {
        let run_with = |engine: &str| {
            let mut o = parse_args(&args(&[
                "-",
                "--no-emit",
                "--simulate",
                "96",
                "--hierarchy",
                "l1=512/32/2,l2=4K/32/fa,policy=exclusive",
                "--exec",
                engine,
            ]))
            .unwrap();
            o.input = "mem".into();
            run_source(SRC, &o).unwrap()
        };
        let a = run_with("interp");
        let b = run_with("compiled");
        let c = run_with("vm");
        assert_eq!(a, b, "interp and compiled engines must report identical hierarchy counts");
        assert_eq!(a, c, "interp and vm engines must report identical hierarchy counts");
    }

    #[test]
    fn engines_agree_on_simulation_output() {
        let run_with = |engine: &str| {
            let mut o =
                parse_args(&args(&["-", "--no-emit", "--simulate", "96", "--exec", engine]))
                    .unwrap();
            o.input = "mem".into();
            run_source(SRC, &o).unwrap()
        };
        let a = run_with("interp");
        let b = run_with("compiled");
        let c = run_with("vm");
        assert_eq!(a, b, "interp and compiled engines must report identical miss counts");
        assert_eq!(a, c, "interp and vm engines must report identical miss counts");
    }

    #[test]
    fn fuel_flag_bounds_simulation() {
        let mut o =
            parse_args(&args(&["-", "--no-emit", "--simulate", "64", "--fuel", "10"])).unwrap();
        o.input = "mem".into();
        // Fuel 10 is too little even for the oracle's own runs.
        let err = run_source(SRC, &o).unwrap_err();
        assert!(
            matches!(
                err,
                GcrError::BudgetExceeded { resource: gcr_ir::Resource::InterpreterFuel, .. }
            ),
            "{err}"
        );
    }

    #[test]
    fn clean_runs_emit_no_diagnostics() {
        let mut o = parse_args(&args(&["-", "--no-emit", "--summary"])).unwrap();
        o.input = "mem".into();
        let (out, diags) = run_source_with_diagnostics(SRC, &o).unwrap();
        assert!(diags.is_empty(), "{diags:?}");
        assert!(out.contains("fusion:"), "{out}");
    }

    #[test]
    fn trace_prints_pass_lines() {
        let mut o = parse_args(&args(&["-", "--no-emit", "--trace"])).unwrap();
        o.input = "mem".into();
        let out = run_source(SRC, &o).unwrap();
        assert!(out.contains("pass trace"), "{out}");
        assert!(out.contains("fusion@1"), "{out}");
        assert!(out.contains("regroup"), "{out}");
    }

    #[test]
    fn profile_prints_histograms() {
        let mut o = parse_args(&args(&["-", "--no-emit", "--profile"])).unwrap();
        o.input = "mem".into();
        let out = run_source(SRC, &o).unwrap();
        assert!(out.contains("reuse profile at N=64"), "{out}");
        assert!(out.contains("array A"), "{out}");
        assert!(out.contains("(all accesses)"), "{out}");
    }

    #[test]
    fn report_to_stdout_is_valid_schema() {
        let mut o = parse_args(&args(&[
            "-",
            "--no-emit",
            "--profile",
            "--simulate",
            "64",
            "--report",
            "-",
        ]))
        .unwrap();
        o.input = "mem".into();
        let out = run_source(SRC, &o).unwrap();
        assert!(out.contains("\"schema\": \"gcr-report/v1\""), "{out}");
        assert!(out.contains("\"pass\": \"fusion@1\""), "{out}");
        assert!(out.contains("\"per_array\""), "{out}");
        assert!(out.contains("\"per_phase\""), "{out}");
        assert!(out.contains("\"simulation\""), "{out}");
        assert!(out.contains("\"cycles\""), "{out}");
    }
}
