//! Self-describing experiment reports: machine-readable JSON plus
//! human-readable text/Markdown renderings of one optimized-and-measured
//! run.
//!
//! A [`Report`] bundles everything the observability layer produces for
//! one program × strategy pair:
//!
//! * the per-pass [`gcr_core::trace::PassEvent`] stream (what ran, how
//!   long, IR deltas),
//! * the fallback rungs of the [`gcr_core::RobustnessReport`] (what the
//!   fail-safe pipeline gave up, and why),
//! * an optional reuse-distance [`gcr_reuse::ReuseProfile`] (full
//!   histograms per array and per phase, not just hit ratios),
//! * an optional cache [`SimSection`] (total and per-phase miss counters
//!   plus modeled cycles).
//!
//! `gcrc --report <path>` writes one `Report`; the experiment binaries
//! (`fig10`, `table6`, `sp_stats`, `fig3`) write a [`ReportSet`] — the
//! same per-run schema wrapped in a list — into `results/*.json`. The
//! workspace has no serde (offline build), so serialization is a small
//! hand-rolled [`Json`] tree; the schema is versioned by [`SCHEMA`] and
//! golden-tested in `crates/cli/tests/report_schema.rs`. EXPERIMENTS.md
//! documents every field.

use gcr_cache::MissCounts;
use gcr_core::trace::PassEvent;
use gcr_core::{OptimizedProgram, RobustnessReport};
use gcr_ir::Program;
use gcr_reuse::{Histogram, ReuseProfile};
use std::fmt::Write as _;

/// Schema tag of a single report.
pub const SCHEMA: &str = "gcr-report/v1";
/// Schema tag of a report set (the `results/*.json` artifacts).
pub const SET_SCHEMA: &str = "gcr-report-set/v1";

// ---------------------------------------------------------------------------
// Minimal JSON tree (the workspace builds offline, without serde)
// ---------------------------------------------------------------------------

/// A JSON value. Object keys keep insertion order so output is stable.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer (counters).
    U(u64),
    /// Signed integer (sizes).
    I(i64),
    /// Finite float (cycles, rates).
    F(f64),
    /// String.
    S(String),
    /// Array.
    A(Vec<Json>),
    /// Object with ordered keys.
    O(Vec<(&'static str, Json)>),
}

fn esc(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Json {
    /// Optional string.
    pub fn opt_str(s: &Option<String>) -> Json {
        match s {
            Some(s) => Json::S(s.clone()),
            None => Json::Null,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U(n) => {
                let _ = write!(out, "{n}");
            }
            Json::I(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F(x) => {
                if x.is_finite() {
                    // Shortest round-trippable form; integral floats keep a
                    // ".0" so consumers see a float consistently.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        let _ = write!(out, "{x:.1}");
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::S(s) => esc(s, out),
            Json::A(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(depth + 1));
                    item.write(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push(']');
            }
            Json::O(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(depth + 1));
                    esc(k, out);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push('}');
            }
        }
    }

    /// Parses JSON text back into a tree — the inverse of [`Json::render`].
    ///
    /// Integers without a sign come back as `U`, negative integers as `I`,
    /// anything with a fraction or exponent as `F`. Object keys are leaked
    /// to `&'static str` to fit the literal-keyed `O` variant: this is for
    /// re-reading the small report files this module writes (so a tool can
    /// merge a section into an existing report), not for arbitrary or
    /// adversarial input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let b = text.as_bytes();
        let mut i = 0usize;
        let v = parse_value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing data at byte {i}"));
        }
        Ok(v)
    }

    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::O(fields) => fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn expect_lit(b: &[u8], i: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*i..].starts_with(lit.as_bytes()) {
        *i += lit.len();
        Ok(v)
    } else {
        Err(format!("expected `{lit}` at byte {i}", i = *i))
    }
}

fn parse_string(b: &[u8], i: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*i], b'"');
    *i += 1;
    let mut out = String::new();
    loop {
        let Some(&c) = b.get(*i) else { return Err("unterminated string".into()) };
        *i += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&e) = b.get(*i) else { return Err("unterminated escape".into()) };
                *i += 1;
                match e {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*i..*i + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("bad \\u escape")?;
                        *i += 4;
                        // Surrogate pairs are not produced by `render` (it
                        // only \u-escapes control characters); map lone
                        // surrogates to the replacement character.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("bad escape `\\{}`", e as char)),
                }
            }
            _ => {
                // Re-decode the UTF-8 sequence starting at c.
                let start = *i - 1;
                let len = match c {
                    _ if c < 0x80 => 1,
                    _ if c >= 0xf0 => 4,
                    _ if c >= 0xe0 => 3,
                    _ => 2,
                };
                let s = b
                    .get(start..start + len)
                    .and_then(|s| std::str::from_utf8(s).ok())
                    .ok_or("bad UTF-8 in string")?;
                out.push_str(s);
                *i = start + len;
            }
        }
    }
}

fn parse_number(b: &[u8], i: &mut usize) -> Result<Json, String> {
    let start = *i;
    while *i < b.len() && matches!(b[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *i += 1;
    }
    let s = std::str::from_utf8(&b[start..*i]).map_err(|_| "bad number")?;
    if s.is_empty() {
        return Err(format!("expected a value at byte {start}"));
    }
    if !s.contains(['.', 'e', 'E']) {
        if let Ok(u) = s.parse::<u64>() {
            return Ok(Json::U(u));
        }
        if let Ok(n) = s.parse::<i64>() {
            return Ok(Json::I(n));
        }
    }
    s.parse::<f64>().map(Json::F).map_err(|_| format!("bad number `{s}`"))
}

fn parse_value(b: &[u8], i: &mut usize) -> Result<Json, String> {
    skip_ws(b, i);
    let Some(&c) = b.get(*i) else { return Err("unexpected end of input".into()) };
    match c {
        b'n' => expect_lit(b, i, "null", Json::Null),
        b't' => expect_lit(b, i, "true", Json::Bool(true)),
        b'f' => expect_lit(b, i, "false", Json::Bool(false)),
        b'"' => parse_string(b, i).map(Json::S),
        b'[' => {
            *i += 1;
            let mut items = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(Json::A(items));
            }
            loop {
                items.push(parse_value(b, i)?);
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(Json::A(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {i}", i = *i)),
                }
            }
        }
        b'{' => {
            *i += 1;
            let mut fields: Vec<(&'static str, Json)> = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(Json::O(fields));
            }
            loop {
                skip_ws(b, i);
                if b.get(*i) != Some(&b'"') {
                    return Err(format!("expected a key at byte {i}", i = *i));
                }
                let key = parse_string(b, i)?;
                skip_ws(b, i);
                if b.get(*i) != Some(&b':') {
                    return Err(format!("expected `:` at byte {i}", i = *i));
                }
                *i += 1;
                let value = parse_value(b, i)?;
                fields.push((Box::leak(key.into_boxed_str()), value));
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(Json::O(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {i}", i = *i)),
                }
            }
        }
        _ => parse_number(b, i),
    }
}

// ---------------------------------------------------------------------------
// Report sections
// ---------------------------------------------------------------------------

/// Static shape of the program a report describes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgramInfo {
    /// Program name.
    pub name: String,
    /// Total loops.
    pub loops: usize,
    /// Top-level nests.
    pub nests: usize,
    /// Assignment statements.
    pub stmts: usize,
    /// Declared arrays (including scalars).
    pub arrays: usize,
}

impl ProgramInfo {
    /// Measures a program.
    pub fn of(prog: &Program) -> ProgramInfo {
        ProgramInfo {
            name: prog.name.clone(),
            loops: prog.count_loops(),
            nests: prog.count_nests(),
            stmts: prog.count_assigns(),
            arrays: prog.arrays.len(),
        }
    }
}

/// One degradation rung, stringified from [`gcr_core::Fallback`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FallbackInfo {
    /// Pass that failed.
    pub pass: String,
    /// Strategy before the rung.
    pub from: String,
    /// Strategy after the rung.
    pub to: String,
    /// Rejection cause.
    pub cause: String,
}

/// Reuse-distance profile section: one measured execution of the delivered
/// program.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileSection {
    /// Size parameter bound to every program parameter.
    pub size: i64,
    /// Time steps executed.
    pub steps: usize,
    /// The measured profile.
    pub profile: ReuseProfile,
}

impl ProfileSection {
    /// Human-readable rendering (the `gcrc --profile` output).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "reuse profile at N={} x{} ({}-byte granularity, {} distinct):",
            self.size,
            self.steps,
            self.profile.granularity,
            self.profile.distinct()
        );
        let _ = writeln!(out, "  {:<24} {}", "(all accesses)", hist_line(&self.profile.global));
        for (name, h) in &self.profile.per_array {
            if h.reuses + h.cold > 0 {
                let _ = writeln!(out, "  array {name:<18} {}", hist_line(h));
            }
        }
        for (label, h) in &self.profile.per_phase {
            if h.reuses + h.cold > 0 {
                let _ = writeln!(out, "  phase {label:<18} {}", hist_line(h));
            }
        }
        out
    }
}

/// One capacity row of a static-prediction section.
#[derive(Clone, Debug, PartialEq)]
pub struct PredictionEntry {
    /// Cache capacity in bytes.
    pub capacity: u64,
    /// Predicted total misses (cold + capacity) at this capacity.
    pub misses: u128,
    /// Closed form of the miss model in `N` (branch for the predicted
    /// size when the model is quasi-polynomial).
    pub model: String,
    /// Predicted misses per array: `(array name, misses)`.
    pub per_array: Vec<(String, u128)>,
}

/// Static-prediction section: an analytical sweep evaluation from
/// `gcr-static`'s symbolic reuse model — no trace simulation at the
/// predicted size. Counts are `u128` (a 10⁹-size sweep overflows `u64`
/// miss products); JSON emits them as integers when they fit `u64` and
/// as floats beyond that.
#[derive(Clone, Debug, PartialEq)]
pub struct PredictionSection {
    /// Size parameter the sweep was evaluated at.
    pub size: i64,
    /// Time steps the model covers.
    pub steps: usize,
    /// Cache line size in bytes.
    pub line: u64,
    /// `"polynomial"` (regime evaluation) or `"direct"` (sub-regime
    /// probe simulation).
    pub method: String,
    /// Construct class: `"exact"` or `"bounded"`.
    pub class: String,
    /// Documented relative-error bound (0 for exact).
    pub tolerance: f64,
    /// Fitted polynomial degree.
    pub degree: usize,
    /// Residue period of the quasi-polynomial model.
    pub period: i64,
    /// Regime floor: sizes below this were simulated directly.
    pub regime_base: i64,
    /// Probe simulations spent building the model.
    pub probe_sims: u32,
    /// Predicted total traced references.
    pub refs: u128,
    /// Per-capacity predictions, ascending.
    pub capacities: Vec<PredictionEntry>,
}

impl PredictionSection {
    /// Human-readable rendering (the `gcrc --static` output).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "prediction at N={} x{} ({} class, {} method, degree {}, {} probes):",
            self.size, self.steps, self.class, self.method, self.degree, self.probe_sims
        );
        let _ = writeln!(out, "  {} refs", self.refs);
        for e in &self.capacities {
            let _ = writeln!(
                out,
                "  capacity {:>8} B: {:>14} misses   misses(N) = {}",
                e.capacity, e.misses, e.model
            );
        }
        out
    }
}

/// Cache-simulation section: totals plus the per-phase breakdown.
#[derive(Clone, Debug, PartialEq)]
pub struct SimSection {
    /// Size parameter.
    pub size: i64,
    /// Time steps executed.
    pub steps: usize,
    /// Modeled cycles ([`gcr_cache::CostModel`]).
    pub cycles: f64,
    /// Floating-point operations executed.
    pub flops: u64,
    /// Total miss counters.
    pub total: MissCounts,
    /// Per-phase miss counters (label, counts).
    pub phases: Vec<(String, MissCounts)>,
}

/// Realistic-hierarchy section: a `--hierarchy` descriptor measured by
/// [`gcr_cache::measure_hierarchy`] — per-level demand counters plus
/// fully-associative and 4-way set-associative sweep bins, all from one
/// trace pass.
#[derive(Clone, Debug, PartialEq)]
pub struct HierarchySection {
    /// Size parameter.
    pub size: i64,
    /// Time steps executed.
    pub steps: usize,
    /// The measured hierarchy.
    pub run: gcr_cache::HierarchyRun,
}

impl HierarchySection {
    /// Plain-text rendering (the `gcrc --hierarchy` console format).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let r = &self.run;
        let _ = writeln!(
            out,
            "hierarchy {} at N={} x{}: {} refs",
            r.spec, self.size, self.steps, r.counts.refs
        );
        for (k, (cfg, c)) in r.configs.iter().zip(&r.counts.levels).enumerate() {
            let _ = writeln!(
                out,
                "  L{} {}B/{}B/{}-way: {} hits, {} misses, {} writebacks",
                k + 1,
                cfg.size,
                cfg.line,
                cfg.assoc,
                c.hits,
                c.misses,
                c.writebacks
            );
        }
        let _ = writeln!(
            out,
            "  memory: {} fills, {} writebacks, {} prefetches, traffic {} B",
            r.counts.memory_fills,
            r.counts.memory_writebacks,
            r.counts.prefetches,
            r.counts.memory_traffic
        );
        let _ = writeln!(out, "  sweep (line {}B): capacity fa-misses 4way-misses", r.line);
        for b in &r.sweep {
            let _ =
                writeln!(out, "  {:>10} {:>10} {:>10}", b.capacity, b.fa_misses, b.assoc_misses);
        }
        out
    }
}

/// One optimized-and-measured run, renderable as JSON, text or Markdown.
#[derive(Clone, Debug, PartialEq)]
pub struct Report {
    /// Tool that produced the report (`gcrc`, `fig10`, …).
    pub generator: String,
    /// Shape of the *input* program.
    pub program: ProgramInfo,
    /// Shape of the transformed program.
    pub output: ProgramInfo,
    /// Strategy requested.
    pub requested: String,
    /// Strategy actually delivered (differs after fallbacks).
    pub delivered: String,
    /// Checkpoints executed by the fail-safe pipeline.
    pub checks: usize,
    /// Why the semantic oracle was disabled, if it was.
    pub oracle_disabled: Option<String>,
    /// Per-pass trace events (empty when tracing was disabled).
    pub trace: Vec<PassEvent>,
    /// Degradation rungs taken.
    pub fallbacks: Vec<FallbackInfo>,
    /// Reuse-distance profile, when measured.
    pub profile: Option<ProfileSection>,
    /// Cache simulation, when measured.
    pub simulation: Option<SimSection>,
    /// Realistic hierarchy measurement, when requested (`--hierarchy`).
    pub hierarchy: Option<HierarchySection>,
    /// Static sweep prediction, when computed.
    pub prediction: Option<PredictionSection>,
}

fn fallbacks_of(rob: &RobustnessReport) -> Vec<FallbackInfo> {
    rob.fallbacks
        .iter()
        .map(|f| FallbackInfo {
            pass: f.pass.to_string(),
            from: f.from.clone(),
            to: f.to.clone(),
            cause: f.cause.to_string(),
        })
        .collect()
}

impl Report {
    /// Builds a report skeleton from an optimization result; profile and
    /// simulation sections start empty.
    pub fn new(
        generator: impl Into<String>,
        input: &Program,
        requested: impl Into<String>,
        opt: &OptimizedProgram,
        trace: Vec<PassEvent>,
    ) -> Report {
        let requested = requested.into();
        let delivered = if opt.robustness.strategy.is_empty() {
            requested.clone()
        } else {
            opt.robustness.strategy.clone()
        };
        Report {
            generator: generator.into(),
            program: ProgramInfo::of(input),
            output: ProgramInfo::of(&opt.program),
            requested,
            delivered,
            checks: opt.robustness.checks,
            oracle_disabled: opt.robustness.oracle_disabled.as_ref().map(|e| e.to_string()),
            trace,
            fallbacks: fallbacks_of(&opt.robustness),
            profile: None,
            simulation: None,
            hierarchy: None,
            prediction: None,
        }
    }

    /// Zeroes wall-clock fields so two runs of the same input serialize
    /// identically (golden tests, run diffing).
    pub fn normalized(mut self) -> Report {
        for ev in &mut self.trace {
            ev.wall_ns = 0;
        }
        self
    }

    /// The JSON tree (see EXPERIMENTS.md for the field-by-field schema).
    pub fn to_json_value(&self) -> Json {
        Json::O(vec![
            ("schema", Json::S(SCHEMA.into())),
            ("generator", Json::S(self.generator.clone())),
            ("program", program_json(&self.program)),
            ("output", program_json(&self.output)),
            (
                "strategy",
                Json::O(vec![
                    ("requested", Json::S(self.requested.clone())),
                    ("delivered", Json::S(self.delivered.clone())),
                    ("degraded", Json::Bool(!self.fallbacks.is_empty())),
                    ("checks", Json::U(self.checks as u64)),
                    ("oracle_disabled", Json::opt_str(&self.oracle_disabled)),
                ]),
            ),
            ("trace", Json::A(self.trace.iter().map(pass_json).collect())),
            (
                "fallbacks",
                Json::A(
                    self.fallbacks
                        .iter()
                        .map(|f| {
                            Json::O(vec![
                                ("pass", Json::S(f.pass.clone())),
                                ("from", Json::S(f.from.clone())),
                                ("to", Json::S(f.to.clone())),
                                ("cause", Json::S(f.cause.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("profile", self.profile.as_ref().map_or(Json::Null, profile_json)),
            ("simulation", self.simulation.as_ref().map_or(Json::Null, sim_json)),
            ("hierarchy", self.hierarchy.as_ref().map_or(Json::Null, hierarchy_json)),
            ("prediction", self.prediction.as_ref().map_or(Json::Null, prediction_json)),
        ])
    }

    /// Machine-readable JSON.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// Human-readable plain text (the `gcrc --trace`/`--profile` format).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "report: {} | {} | {} -> {}{}",
            self.generator,
            self.program.name,
            self.requested,
            self.delivered,
            if self.fallbacks.is_empty() { "" } else { " (degraded)" },
        );
        if !self.trace.is_empty() {
            let _ = writeln!(out, "pass trace ({} checkpoints):", self.checks);
            for ev in &self.trace {
                let _ = writeln!(out, "  {}", ev.describe());
            }
        }
        for f in &self.fallbacks {
            let _ = writeln!(out, "fallback: {} {} -> {} ({})", f.pass, f.from, f.to, f.cause);
        }
        if let Some(p) = &self.profile {
            out.push_str(&p.to_text());
        }
        if let Some(s) = &self.simulation {
            let _ = writeln!(
                out,
                "simulation at N={} x{}: {:.3e} cycles, {}",
                s.size,
                s.steps,
                s.cycles,
                miss_line(&s.total)
            );
            for (label, c) in &s.phases {
                if c.refs > 0 {
                    let _ = writeln!(out, "  phase {label:<18} {}", miss_line(c));
                }
            }
        }
        if let Some(h) = &self.hierarchy {
            out.push_str(&h.to_text());
        }
        if let Some(p) = &self.prediction {
            out.push_str(&p.to_text());
        }
        out
    }

    /// Human-readable Markdown (tables per section).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {} — `{}`\n", self.program.name, self.generator);
        let _ = writeln!(
            out,
            "strategy `{}` → delivered `{}`; {} checkpoints{}\n",
            self.requested,
            self.delivered,
            self.checks,
            self.oracle_disabled
                .as_ref()
                .map(|c| format!("; oracle disabled: {c}"))
                .unwrap_or_default()
        );
        if !self.trace.is_empty() {
            let _ = writeln!(out, "| pass | ok | ms | loops | stmts | arrays | detail |");
            let _ = writeln!(out, "|------|----|----|-------|-------|--------|--------|");
            for ev in &self.trace {
                let _ = writeln!(
                    out,
                    "| {} | {} | {:.3} | {}→{} | {}→{} | {}→{} | {} |",
                    ev.pass,
                    if ev.ok { "✓" } else { "✗" },
                    ev.wall_ns as f64 / 1e6,
                    ev.before.loops,
                    ev.after.loops,
                    ev.before.stmts,
                    ev.after.stmts,
                    ev.before.arrays,
                    ev.after.arrays,
                    ev.detail,
                );
            }
            let _ = writeln!(out);
        }
        for f in &self.fallbacks {
            let _ =
                writeln!(out, "- **fallback** {}: {} → {} ({})\n", f.pass, f.from, f.to, f.cause);
        }
        if let Some(p) = &self.profile {
            let _ = writeln!(
                out,
                "### Reuse profile (N={}, {} distinct)\n",
                p.size,
                p.profile.distinct()
            );
            let _ = writeln!(out, "| scope | reuses | cold | histogram (log₂ bin: count) |");
            let _ = writeln!(out, "|-------|--------|------|------------------------------|");
            let _ = writeln!(
                out,
                "| all | {} | {} | {} |",
                p.profile.global.reuses,
                p.profile.global.cold,
                hist_points(&p.profile.global)
            );
            for (name, h) in &p.profile.per_array {
                if h.reuses + h.cold > 0 {
                    let _ = writeln!(
                        out,
                        "| array `{name}` | {} | {} | {} |",
                        h.reuses,
                        h.cold,
                        hist_points(h)
                    );
                }
            }
            for (label, h) in &p.profile.per_phase {
                if h.reuses + h.cold > 0 {
                    let _ = writeln!(
                        out,
                        "| phase `{label}` | {} | {} | {} |",
                        h.reuses,
                        h.cold,
                        hist_points(h)
                    );
                }
            }
            let _ = writeln!(out);
        }
        if let Some(s) = &self.simulation {
            let _ = writeln!(out, "### Simulation (N={}, {} steps)\n", s.size, s.steps);
            let _ = writeln!(out, "| scope | refs | L1 | L2 | TLB | traffic B |");
            let _ = writeln!(out, "|-------|------|----|----|-----|-----------|");
            let row = |out: &mut String, label: &str, c: &MissCounts| {
                let _ = writeln!(
                    out,
                    "| {label} | {} | {} | {} | {} | {} |",
                    c.refs, c.l1, c.l2, c.tlb, c.memory_traffic
                );
            };
            row(&mut out, "total", &s.total);
            for (label, c) in &s.phases {
                if c.refs > 0 {
                    row(&mut out, &format!("phase `{label}`"), c);
                }
            }
        }
        if let Some(h) = &self.hierarchy {
            let r = &h.run;
            let _ = writeln!(out, "### Hierarchy `{}` (N={}, {} steps)\n", r.spec, h.size, h.steps);
            let _ =
                writeln!(out, "| level | size B | line B | ways | hits | misses | writebacks |");
            let _ =
                writeln!(out, "|-------|--------|--------|------|------|--------|------------|");
            for (k, (cfg, c)) in r.configs.iter().zip(&r.counts.levels).enumerate() {
                let _ = writeln!(
                    out,
                    "| L{} | {} | {} | {} | {} | {} | {} |",
                    k + 1,
                    cfg.size,
                    cfg.line,
                    cfg.assoc,
                    c.hits,
                    c.misses,
                    c.writebacks
                );
            }
            let _ = writeln!(
                out,
                "\n{} refs; memory: {} fills, {} writebacks, {} prefetches, {} B traffic\n",
                r.counts.refs,
                r.counts.memory_fills,
                r.counts.memory_writebacks,
                r.counts.prefetches,
                r.counts.memory_traffic
            );
            let _ = writeln!(out, "| capacity B | FA misses | 4-way misses |");
            let _ = writeln!(out, "|------------|-----------|--------------|");
            for b in &r.sweep {
                let _ = writeln!(out, "| {} | {} | {} |", b.capacity, b.fa_misses, b.assoc_misses);
            }
            let _ = writeln!(out);
        }
        if let Some(p) = &self.prediction {
            let _ = writeln!(
                out,
                "### Static prediction (N={}, {} steps, {} class, {} method)\n",
                p.size, p.steps, p.class, p.method
            );
            let _ = writeln!(out, "| capacity B | misses | misses(N) |");
            let _ = writeln!(out, "|------------|--------|-----------|");
            for e in &p.capacities {
                let _ = writeln!(out, "| {} | {} | `{}` |", e.capacity, e.misses, e.model);
            }
        }
        out
    }
}

fn hist_line(h: &Histogram) -> String {
    format!("{:>9} reuses {:>7} cold  {}", h.reuses, h.cold, hist_points(h))
}

fn hist_points(h: &Histogram) -> String {
    let pts: Vec<String> = h.points().iter().map(|(b, c)| format!("2^{b}:{c}")).collect();
    if pts.is_empty() {
        "-".into()
    } else {
        pts.join(" ")
    }
}

fn miss_line(c: &MissCounts) -> String {
    format!(
        "{} refs, L1 {} ({:.2}%), L2 {}, TLB {}, traffic {} KB",
        c.refs,
        c.l1,
        100.0 * c.l1_rate(),
        c.l2,
        c.tlb,
        c.memory_traffic / 1024
    )
}

fn program_json(p: &ProgramInfo) -> Json {
    Json::O(vec![
        ("name", Json::S(p.name.clone())),
        ("loops", Json::U(p.loops as u64)),
        ("nests", Json::U(p.nests as u64)),
        ("stmts", Json::U(p.stmts as u64)),
        ("arrays", Json::U(p.arrays as u64)),
    ])
}

fn pass_json(ev: &PassEvent) -> Json {
    let size = |s: &gcr_core::trace::IrSize| {
        Json::O(vec![
            ("loops", Json::U(s.loops as u64)),
            ("nests", Json::U(s.nests as u64)),
            ("stmts", Json::U(s.stmts as u64)),
            ("arrays", Json::U(s.arrays as u64)),
        ])
    };
    Json::O(vec![
        ("pass", Json::S(ev.pass.clone())),
        ("ok", Json::Bool(ev.ok)),
        ("wall_ns", Json::U(ev.wall_ns)),
        ("before", size(&ev.before)),
        ("after", size(&ev.after)),
        ("detail", Json::S(ev.detail.clone())),
    ])
}

fn hist_json(h: &Histogram) -> Json {
    Json::O(vec![
        ("bins", Json::A(h.bins.iter().map(|&c| Json::U(c)).collect())),
        ("cold", Json::U(h.cold)),
        ("reuses", Json::U(h.reuses)),
    ])
}

fn profile_json(p: &ProfileSection) -> Json {
    Json::O(vec![
        ("size", Json::I(p.size)),
        ("steps", Json::U(p.steps as u64)),
        ("granularity_bytes", Json::U(p.profile.granularity)),
        ("distinct", Json::U(p.profile.distinct())),
        ("global", hist_json(&p.profile.global)),
        (
            "per_array",
            Json::A(
                p.profile
                    .per_array
                    .iter()
                    .map(|(name, h)| {
                        Json::O(vec![("name", Json::S(name.clone())), ("histogram", hist_json(h))])
                    })
                    .collect(),
            ),
        ),
        (
            "per_phase",
            Json::A(
                p.profile
                    .per_phase
                    .iter()
                    .map(|(label, h)| {
                        Json::O(vec![
                            ("label", Json::S(label.clone())),
                            ("histogram", hist_json(h)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn miss_json(c: &MissCounts) -> Json {
    Json::O(vec![
        ("refs", Json::U(c.refs)),
        ("l1", Json::U(c.l1)),
        ("l2", Json::U(c.l2)),
        ("tlb", Json::U(c.tlb)),
        ("memory_traffic_bytes", Json::U(c.memory_traffic)),
    ])
}

fn sim_json(s: &SimSection) -> Json {
    Json::O(vec![
        ("size", Json::I(s.size)),
        ("steps", Json::U(s.steps as u64)),
        ("cycles", Json::F(s.cycles)),
        ("flops", Json::U(s.flops)),
        ("total", miss_json(&s.total)),
        (
            "per_phase",
            Json::A(
                s.phases
                    .iter()
                    .map(|(label, c)| {
                        Json::O(vec![("label", Json::S(label.clone())), ("misses", miss_json(c))])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// `u128` counts serialize as exact integers while they fit `u64` and as
/// floats beyond that (documented in EXPERIMENTS.md §7).
fn big_json(v: u128) -> Json {
    match u64::try_from(v) {
        Ok(u) => Json::U(u),
        Err(_) => Json::F(v as f64),
    }
}

fn hierarchy_json(h: &HierarchySection) -> Json {
    let r = &h.run;
    Json::O(vec![
        ("size", Json::I(h.size)),
        ("steps", Json::U(h.steps as u64)),
        ("spec", Json::S(r.spec.clone())),
        ("line_bytes", Json::U(r.line)),
        ("refs", Json::U(r.counts.refs)),
        (
            "levels",
            Json::A(
                r.configs
                    .iter()
                    .zip(&r.counts.levels)
                    .map(|(cfg, c)| {
                        Json::O(vec![
                            ("size", Json::U(cfg.size as u64)),
                            ("line", Json::U(cfg.line as u64)),
                            ("assoc", Json::U(cfg.assoc as u64)),
                            ("hits", Json::U(c.hits)),
                            ("misses", Json::U(c.misses)),
                            ("writebacks", Json::U(c.writebacks)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("prefetches", Json::U(r.counts.prefetches)),
        ("memory_fills", Json::U(r.counts.memory_fills)),
        ("memory_writebacks", Json::U(r.counts.memory_writebacks)),
        ("memory_traffic", Json::U(r.counts.memory_traffic)),
        (
            "sweep",
            Json::A(
                r.sweep
                    .iter()
                    .map(|b| {
                        Json::O(vec![
                            ("capacity", Json::U(b.capacity)),
                            ("fa_misses", Json::U(b.fa_misses)),
                            ("assoc_misses", Json::U(b.assoc_misses)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn prediction_json(p: &PredictionSection) -> Json {
    Json::O(vec![
        ("size", Json::I(p.size)),
        ("steps", Json::U(p.steps as u64)),
        ("line_bytes", Json::U(p.line)),
        ("method", Json::S(p.method.clone())),
        ("class", Json::S(p.class.clone())),
        ("tolerance", Json::F(p.tolerance)),
        ("degree", Json::U(p.degree as u64)),
        ("period", Json::I(p.period)),
        ("regime_base", Json::I(p.regime_base)),
        ("probe_sims", Json::U(p.probe_sims as u64)),
        ("refs", big_json(p.refs)),
        (
            "capacities",
            Json::A(
                p.capacities
                    .iter()
                    .map(|e| {
                        Json::O(vec![
                            ("capacity_bytes", Json::U(e.capacity)),
                            ("misses", big_json(e.misses)),
                            ("model", Json::S(e.model.clone())),
                            (
                                "per_array",
                                Json::A(
                                    e.per_array
                                        .iter()
                                        .map(|(name, m)| {
                                            Json::O(vec![
                                                ("name", Json::S(name.clone())),
                                                ("misses", big_json(*m)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Wall-clock accounting of the sweep that produced a [`ReportSet`]: how
/// many worker threads ran it, how long it took, and how often the
/// content-keyed measurement cache short-circuited a run. Timing is
/// machine-dependent by nature, so the section is *optional* and stripped
/// by [`ReportSet::normalized`] — two sweeps of the same inputs compare
/// byte-identical modulo this section.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct SweepTiming {
    /// Worker threads used (1 = serial).
    pub threads: usize,
    /// Wall-clock nanoseconds for the whole sweep.
    pub wall_ns: u64,
    /// Measurements answered from the content-keyed cache.
    pub memo_hits: u64,
    /// Measurements actually executed.
    pub memo_misses: u64,
    /// Cache entries evicted by the LRU capacity bound during the sweep.
    pub memo_evictions: u64,
    /// Corrupt disk-cache entries detected (and transparently recomputed)
    /// when the sweep's persistent cache was loaded.
    pub memo_corrupt: u64,
}

impl SweepTiming {
    fn to_json_value(&self) -> Json {
        Json::O(vec![
            ("threads", Json::U(self.threads as u64)),
            ("wall_ns", Json::U(self.wall_ns)),
            ("memo_hits", Json::U(self.memo_hits)),
            ("memo_misses", Json::U(self.memo_misses)),
            ("memo_evictions", Json::U(self.memo_evictions)),
            ("memo_corrupt", Json::U(self.memo_corrupt)),
        ])
    }
}

/// A list of [`Report`]s sharing one generator — the shape of every
/// `results/*.json` artifact.
#[derive(Clone, Debug, PartialEq)]
pub struct ReportSet {
    /// Tool that produced the set.
    pub generator: String,
    /// One-line description of the artifact (which figure/table).
    pub title: String,
    /// The runs.
    pub reports: Vec<Report>,
    /// Sweep wall-clock accounting; the key is absent from the JSON when
    /// unset, so pre-timing artifacts keep their exact bytes.
    pub timing: Option<SweepTiming>,
}

impl ReportSet {
    /// An empty set.
    pub fn new(generator: impl Into<String>, title: impl Into<String>) -> ReportSet {
        ReportSet {
            generator: generator.into(),
            title: title.into(),
            reports: Vec::new(),
            timing: None,
        }
    }

    /// Strips every machine-dependent field — per-pass wall clocks and the
    /// `timing` section — so two sweeps of the same inputs serialize
    /// identically (golden tests, serial-vs-parallel diffing).
    pub fn normalized(mut self) -> ReportSet {
        self.timing = None;
        self.reports = self.reports.into_iter().map(Report::normalized).collect();
        self
    }

    /// Machine-readable JSON.
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            ("schema", Json::S(SET_SCHEMA.into())),
            ("generator", Json::S(self.generator.clone())),
            ("title", Json::S(self.title.clone())),
        ];
        if let Some(t) = &self.timing {
            fields.push(("timing", t.to_json_value()));
        }
        fields.push(("reports", Json::A(self.reports.iter().map(|r| r.to_json_value()).collect())));
        Json::O(fields).render()
    }

    /// Writes the JSON artifact, creating parent directories as needed.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_and_shapes() {
        let v = Json::O(vec![
            ("s", Json::S("a\"b\\c\nd".into())),
            ("e", Json::A(vec![])),
            ("o", Json::O(vec![])),
            ("nan", Json::F(f64::NAN)),
            ("f", Json::F(2.0)),
        ]);
        let s = v.render();
        assert!(s.contains("\"a\\\"b\\\\c\\nd\""), "{s}");
        assert!(s.contains("\"e\": []"), "{s}");
        assert!(s.contains("\"o\": {}"), "{s}");
        assert!(s.contains("\"nan\": null"), "{s}");
        assert!(s.contains("\"f\": 2.0"), "{s}");
    }

    #[test]
    fn json_parse_round_trips() {
        let v = Json::O(vec![
            ("s", Json::S("a\"b\\c\nd — π".into())),
            ("u", Json::U(u64::MAX)),
            ("i", Json::I(-7)),
            ("f", Json::F(2.5)),
            ("fi", Json::F(2.0)),
            ("b", Json::Bool(true)),
            ("n", Json::Null),
            ("a", Json::A(vec![Json::U(1), Json::O(vec![("k", Json::S("v".into()))])])),
        ]);
        let back = Json::parse(&v.render()).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.get("i"), Some(&Json::I(-7)));
        assert_eq!(back.get("missing"), None);
        assert!(Json::parse("{\"k\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("42 junk").is_err());
        assert_eq!(Json::parse(" 42 ").unwrap(), Json::U(42));
    }

    #[test]
    fn report_renders_all_formats() {
        let prog = gcr_frontend::parse(
            "
program demo
param N
array A[N], B[N]
for i = 1, N {
  A[i] = f(A[i])
}
for i = 1, N {
  B[i] = g(A[i], B[i])
}
",
        )
        .unwrap();
        let mut tracer = gcr_core::Tracer::enabled();
        let opt = gcr_core::apply_strategy_checked_traced(
            &prog,
            gcr_core::pipeline::Strategy::FusionOnly { levels: 3 },
            &gcr_core::SafetyOptions::default(),
            &mut tracer,
        )
        .unwrap();
        let report = Report::new("test", &prog, "fuse3", &opt, tracer.into_events());
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"gcr-report/v1\""), "{json}");
        assert!(json.contains("\"pass\": \"fusion@1\""), "{json}");
        let text = report.to_text();
        assert!(text.contains("pass trace"), "{text}");
        let md = report.to_markdown();
        assert!(md.contains("| pass | ok |"), "{md}");
    }
}
