//! `gcrc` binary entry point.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match gcr_cli::run(&args) {
        Ok((out, diagnostics)) => {
            for line in diagnostics {
                eprintln!("{line}");
            }
            print!("{out}");
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}
