//! `gcrc` binary entry point.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match gcr_cli::run(&args) {
        Ok(out) => print!("{out}"),
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    }
}
