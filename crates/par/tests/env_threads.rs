//! Integration tests for the `GCR_THREADS` environment override and the
//! public entry points that consult it. Everything that mutates the
//! environment lives in a single test function: the test binary runs tests
//! on multiple threads, and `set_var` is process-global.

use std::panic::{catch_unwind, AssertUnwindSafe};

#[test]
fn gcr_threads_env_contract() {
    // A positive integer is honored verbatim.
    std::env::set_var("GCR_THREADS", "1");
    assert_eq!(gcr_par::thread_count(), 1);
    std::env::set_var("GCR_THREADS", "3");
    assert_eq!(gcr_par::thread_count(), 3);

    // `GCR_THREADS=1` forces serial execution in the calling thread:
    // thread-local state mutated by the closure is visible to the caller.
    std::env::set_var("GCR_THREADS", "1");
    thread_local! { static HITS: std::cell::Cell<u32> = const { std::cell::Cell::new(0) }; }
    HITS.with(|h| h.set(0));
    let out = gcr_par::scope_map(&[10u32, 20, 30], |&x| {
        HITS.with(|h| h.set(h.get() + 1));
        x / 10
    });
    assert_eq!(out, vec![1, 2, 3]);
    assert_eq!(HITS.with(|h| h.get()), 3, "GCR_THREADS=1 must not spawn workers");

    // `GCR_THREADS=0` means "no parallelism": serial execution in the
    // calling thread, exactly like 1 — not a panic, not a guess.
    std::env::set_var("GCR_THREADS", "0");
    assert_eq!(gcr_par::thread_count(), 1);
    HITS.with(|h| h.set(0));
    let caller = std::thread::current().id();
    let ids = gcr_par::scope_map(&[1u32, 2, 3, 4], |&x| {
        HITS.with(|h| h.set(h.get() + 1));
        (x * x, std::thread::current().id())
    });
    assert_eq!(ids.iter().map(|&(v, _)| v).collect::<Vec<_>>(), vec![1, 4, 9, 16]);
    assert!(ids.iter().all(|&(_, id)| id == caller), "GCR_THREADS=0 must stay serial");
    assert_eq!(HITS.with(|h| h.get()), 4, "GCR_THREADS=0 must not spawn workers");

    // Garbage falls back to the default (≥ 1), not a panic.
    for bad in ["-2", "lots", ""] {
        std::env::set_var("GCR_THREADS", bad);
        assert!(gcr_par::thread_count() >= 1, "GCR_THREADS={bad:?}");
    }

    // Empty input and a single item work under the env-selected pool too.
    std::env::set_var("GCR_THREADS", "4");
    let empty: Vec<u32> = Vec::new();
    assert!(gcr_par::scope_map(&empty, |&x| x).is_empty());
    assert_eq!(gcr_par::scope_map(&[5u32], |&x| x * x), vec![25]);

    // par_for_each distributes every item exactly once.
    let seen = std::sync::atomic::AtomicU32::new(0);
    gcr_par::par_for_each(&[1u32, 2, 4, 8], |&x| {
        seen.fetch_add(x, std::sync::atomic::Ordering::Relaxed);
    });
    assert_eq!(seen.load(std::sync::atomic::Ordering::Relaxed), 15);

    // A worker panic surfaces on the caller with its original message even
    // when the pool came from the environment.
    let err = catch_unwind(AssertUnwindSafe(|| {
        gcr_par::scope_map(&(0..16).collect::<Vec<u32>>(), |&x| {
            if x == 9 {
                panic!("env pool boom {x}");
            }
            x
        })
    }))
    .unwrap_err();
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains("env pool boom 9"), "payload lost: {msg:?}");

    std::env::remove_var("GCR_THREADS");
}
