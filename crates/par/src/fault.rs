//! Seeded fault injection — the `GCR_FAULT` environment contract.
//!
//! A fault-tolerant service is only as good as the faults it has actually
//! survived, so the workspace carries its injection points in production
//! code, compiled in permanently and gated behind one environment
//! variable. When `GCR_FAULT` is unset (the normal case) every site costs
//! a single relaxed atomic load of a pre-resolved `None`; when set, each
//! named site fires deterministically from a seeded splitmix64 stream, so
//! a chaos campaign is exactly reproducible from `(GCR_FAULT,
//! GCR_FAULT_SEED)`.
//!
//! ```text
//! GCR_FAULT=panic_in_pass=0.05,slow_sim=0.2   # per-site fire rates in [0,1]
//! GCR_FAULT=torn_cache_write                  # bare name = rate 1.0
//! GCR_FAULT_SEED=42                           # decision stream seed (default 0)
//! GCR_FAULT_SLEEP_MS=250                      # slow_sim stall length (default 250)
//! ```
//!
//! The injection-point catalog (see DESIGN.md §13 for where each one is
//! planted):
//!
//! | name                 | site                               | models |
//! |----------------------|------------------------------------|---------|
//! | `panic_in_pass`      | checked-pipeline entry (`gcr-core`) | a panicking optimizer pass escaping the ladder |
//! | `slow_sim`           | cold measurement (`gcr-bench`)      | a runaway simulation blowing its deadline |
//! | `torn_cache_write`   | cache persistence (`gcr-bench`)     | a crash mid-write leaving a torn cache file |
//! | `truncated_frame`    | response writer (`gcr-serve`)       | a connection dying mid-frame |
//! | `io_error`           | cache persistence (`gcr-bench`)     | an ENOSPC-style I/O failure on flush |
//!
//! Decisions are made per *site visit*: each point keeps a visit counter,
//! and visit `t` fires iff `splitmix64(seed ⊕ salt(point) ⊕ t) < rate ·
//! 2⁶⁴`. Counters of fired injections are queryable ([`injected`]) so a
//! harness can assert its faults actually happened.

use crate::rng::Rng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// One named injection site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultPoint {
    /// Panic at the entry of the checked optimization pipeline.
    PanicInPass,
    /// Stall a cold (uncached) measurement by `GCR_FAULT_SLEEP_MS`.
    SlowSim,
    /// Persist the measurement cache non-atomically and truncated, as a
    /// crash in the middle of an unbuffered write would.
    TornCacheWrite,
    /// Truncate a protocol response frame and drop the connection.
    TruncatedFrame,
    /// Fail a cache flush with an ENOSPC-style I/O error.
    IoError,
}

/// Number of catalogued injection points.
pub const NPOINTS: usize = 5;

impl FaultPoint {
    /// Every catalogued point, in wire-name order.
    pub const ALL: [FaultPoint; NPOINTS] = [
        FaultPoint::PanicInPass,
        FaultPoint::SlowSim,
        FaultPoint::TornCacheWrite,
        FaultPoint::TruncatedFrame,
        FaultPoint::IoError,
    ];

    /// The `GCR_FAULT` spec name of this point.
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::PanicInPass => "panic_in_pass",
            FaultPoint::SlowSim => "slow_sim",
            FaultPoint::TornCacheWrite => "torn_cache_write",
            FaultPoint::TruncatedFrame => "truncated_frame",
            FaultPoint::IoError => "io_error",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultPoint::PanicInPass => 0,
            FaultPoint::SlowSim => 1,
            FaultPoint::TornCacheWrite => 2,
            FaultPoint::TruncatedFrame => 3,
            FaultPoint::IoError => 4,
        }
    }

    fn from_name(name: &str) -> Option<FaultPoint> {
        FaultPoint::ALL.iter().copied().find(|p| p.name() == name)
    }

    /// Decorrelates the per-point decision streams.
    fn salt(self) -> u64 {
        0x5157_4f52_4b5f_0000 ^ ((self.index() as u64 + 1) << 24)
    }
}

/// A parsed `GCR_FAULT` spec: a fire rate per injection point plus the
/// decision-stream seed.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    /// Fire probability in `[0, 1]` per [`FaultPoint::index`].
    rates: [f64; NPOINTS],
}

impl FaultPlan {
    /// Parses a spec string (`point[=rate][,point[=rate]]...`). Unknown
    /// point names and rates outside `[0, 1]` are errors — a chaos run
    /// with a typo'd fault silently injecting nothing would "pass"
    /// vacuously.
    pub fn parse(spec: &str, seed: u64) -> Result<FaultPlan, String> {
        let mut rates = [0.0; NPOINTS];
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (name, rate) = match part.split_once('=') {
                Some((n, r)) => {
                    let rate: f64 = r
                        .trim()
                        .parse()
                        .map_err(|_| format!("GCR_FAULT: bad rate {r:?} for {n:?}"))?;
                    (n.trim(), rate)
                }
                None => (part, 1.0),
            };
            let point = FaultPoint::from_name(name)
                .ok_or_else(|| format!("GCR_FAULT: unknown injection point {name:?}"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("GCR_FAULT: rate {rate} for {name:?} outside [0, 1]"));
            }
            rates[point.index()] = rate;
        }
        Ok(FaultPlan { seed, rates })
    }

    /// Whether visit `tick` of `point` fires under this plan. Pure: the
    /// same `(seed, point, tick)` answers identically on any machine.
    pub fn fires_at(&self, point: FaultPoint, tick: u64) -> bool {
        let rate = self.rates[point.index()];
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        let draw = Rng::new(self.seed ^ point.salt() ^ tick.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .next_u64();
        (draw as f64) < rate * (u64::MAX as f64)
    }
}

struct FaultState {
    plan: FaultPlan,
    /// Site-visit counters (decision stream position).
    ticks: [AtomicU64; NPOINTS],
    /// Fired-injection counters.
    fired: [AtomicU64; NPOINTS],
}

static STATE: OnceLock<Option<FaultState>> = OnceLock::new();

fn state() -> Option<&'static FaultState> {
    STATE
        .get_or_init(|| {
            let spec = std::env::var("GCR_FAULT").ok()?;
            if spec.trim().is_empty() {
                return None;
            }
            let seed = std::env::var("GCR_FAULT_SEED")
                .ok()
                .and_then(|s| s.trim().parse().ok())
                .unwrap_or(0);
            match FaultPlan::parse(&spec, seed) {
                Ok(plan) => {
                    Some(FaultState { plan, ticks: Default::default(), fired: Default::default() })
                }
                Err(e) => {
                    // Fail loudly: a misconfigured chaos campaign must not
                    // silently run fault-free.
                    panic!("{e}");
                }
            }
        })
        .as_ref()
}

/// True when a `GCR_FAULT` plan is active in this process.
pub fn active() -> bool {
    state().is_some()
}

/// Visits the injection site `point` and reports whether it fires this
/// time. Always false (and nearly free) without a `GCR_FAULT` plan.
pub fn fires(point: FaultPoint) -> bool {
    let Some(st) = state() else { return false };
    let tick = st.ticks[point.index()].fetch_add(1, Ordering::Relaxed);
    let fire = st.plan.fires_at(point, tick);
    if fire {
        let n = st.fired[point.index()].fetch_add(1, Ordering::Relaxed) + 1;
        eprintln!("gcr-fault: injected {} (#{n})", point.name());
    }
    fire
}

/// How many times `point` has fired in this process.
pub fn injected(point: FaultPoint) -> u64 {
    state().map_or(0, |st| st.fired[point.index()].load(Ordering::Relaxed))
}

/// Total injections across all points.
pub fn injected_total() -> u64 {
    FaultPoint::ALL.iter().map(|&p| injected(p)).sum()
}

/// Panics with a recognizable payload when `point` fires.
pub fn maybe_panic(point: FaultPoint) {
    if fires(point) {
        panic!("injected fault: {}", point.name());
    }
}

/// Sleeps for the configured stall (`GCR_FAULT_SLEEP_MS`, default 250)
/// when `point` fires; returns whether it did.
pub fn maybe_sleep(point: FaultPoint) -> bool {
    if fires(point) {
        let ms = std::env::var("GCR_FAULT_SLEEP_MS")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(250);
        std::thread::sleep(std::time::Duration::from_millis(ms));
        true
    } else {
        false
    }
}

/// Returns an ENOSPC-flavoured I/O error when `point` fires.
pub fn maybe_io_error(point: FaultPoint, what: &str) -> std::io::Result<()> {
    if fires(point) {
        Err(std::io::Error::other(format!(
            "injected fault: {} (no space left on device) during {what}",
            point.name()
        )))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_rates_and_bare_names() {
        let p = FaultPlan::parse("panic_in_pass=0.25, slow_sim", 1).unwrap();
        assert_eq!(p.rates[FaultPoint::PanicInPass.index()], 0.25);
        assert_eq!(p.rates[FaultPoint::SlowSim.index()], 1.0);
        assert_eq!(p.rates[FaultPoint::IoError.index()], 0.0);
        assert!(FaultPlan::parse("", 0).unwrap().rates.iter().all(|&r| r == 0.0));
    }

    #[test]
    fn parse_rejects_typos_and_bad_rates() {
        assert!(FaultPlan::parse("panic_in_pas=0.5", 0).is_err());
        assert!(FaultPlan::parse("slow_sim=1.5", 0).is_err());
        assert!(FaultPlan::parse("slow_sim=x", 0).is_err());
    }

    #[test]
    fn decisions_are_deterministic_and_rate_shaped() {
        let plan = FaultPlan::parse("slow_sim=0.3", 9).unwrap();
        let again = FaultPlan::parse("slow_sim=0.3", 9).unwrap();
        let n = 10_000u64;
        let mut hits = 0;
        for t in 0..n {
            let a = plan.fires_at(FaultPoint::SlowSim, t);
            assert_eq!(a, again.fires_at(FaultPoint::SlowSim, t), "tick {t}");
            hits += a as u64;
        }
        let rate = hits as f64 / n as f64;
        assert!((0.25..0.35).contains(&rate), "empirical rate {rate} far from 0.3");
        // Other points stay silent, and extreme rates are exact.
        assert!(!plan.fires_at(FaultPoint::IoError, 0));
        let all = FaultPlan::parse("io_error=1.0", 9).unwrap();
        assert!(all.fires_at(FaultPoint::IoError, 12345));
    }

    #[test]
    fn seeds_decorrelate_streams() {
        let a = FaultPlan::parse("slow_sim=0.5", 1).unwrap();
        let b = FaultPlan::parse("slow_sim=0.5", 2).unwrap();
        let diverged = (0..64)
            .any(|t| a.fires_at(FaultPoint::SlowSim, t) != b.fires_at(FaultPoint::SlowSim, t));
        assert!(diverged, "different seeds must give different decision streams");
    }

    #[test]
    fn names_round_trip() {
        for p in FaultPoint::ALL {
            assert_eq!(FaultPoint::from_name(p.name()), Some(p));
        }
        assert_eq!(FaultPoint::from_name("nope"), None);
    }
}
