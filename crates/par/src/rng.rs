//! Seeded deterministic random stream (splitmix64).
//!
//! Lives in `gcr-par` because every consumer of seeded randomness in the
//! workspace sits above it: the conformance fuzzer's program generator
//! (`gcr-conform` re-exports this type), the [`crate::fault`] injection
//! plan's per-site decisions, and the `gcr-chaos` workload driver. One
//! `u64` seed fully determines the stream on any machine and thread
//! count, which is what makes `gcr-fuzz --seed` and `gcr-chaos --seed`
//! reproducible and lets a failure report name the exact iteration.

/// Splitmix64 generator — tiny, fast, and with provably full period over
/// the `u64` state, which is all a program generator needs.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A stream fully determined by `seed`.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// The stream for fuzzing iteration `it` under root `seed`: seeds are
    /// decorrelated by one splitmix round so neighbouring iterations do
    /// not produce neighbouring programs.
    pub fn for_iteration(seed: u64, it: u64) -> Self {
        let mut r = Rng::new(seed ^ it.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        r.next_u64();
        r
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // The generator draws from tiny ranges; modulo bias is irrelevant.
        self.next_u64() % n
    }

    /// Uniform value in `lo..=hi`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        lo + self.below((hi - lo + 1) as u64) as i64
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Uniformly picks one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn iteration_streams_differ() {
        let a = Rng::for_iteration(5, 0).next_u64();
        let b = Rng::for_iteration(5, 1).next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn range_is_inclusive_and_bounded() {
        let mut r = Rng::new(3);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            let v = r.range(-2, 2);
            assert!((-2..=2).contains(&v));
            seen_lo |= v == -2;
            seen_hi |= v == 2;
        }
        assert!(seen_lo && seen_hi, "both endpoints should be reachable");
    }
}
