#![warn(missing_docs)]

//! `gcr-par` — a hand-rolled scoped worker pool over [`std::thread`].
//!
//! The build container has no crates.io access, so the workspace cannot use
//! rayon; this crate provides the small slice of it the experiment sweeps
//! need (the same vendored-shim pattern as the in-workspace `proptest` and
//! `criterion`):
//!
//! * [`scope_map`] — apply a function to every item of a slice on a pool of
//!   scoped threads and collect the results **in input order**, regardless
//!   of thread count or scheduling. Determinism is structural: each item's
//!   result is written into its own slot, so parallel output is
//!   byte-identical to serial output for any pure `f`.
//! * [`par_for_each`] — same distribution, no results.
//! * Panic propagation: a panic on any worker is re-raised on the calling
//!   thread with its original payload once all workers have stopped.
//!
//! Thread count comes from the `GCR_THREADS` environment variable when set
//! (a positive integer; `1` forces serial execution in the calling thread),
//! otherwise from [`std::thread::available_parallelism`]. Work is
//! distributed dynamically — an atomic next-item counter — so a sweep whose
//! points vary wildly in cost (big apps next to small ones) still balances.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads a sweep will use: the `GCR_THREADS` override
/// when set and positive, otherwise the host's available parallelism.
pub fn thread_count() -> usize {
    match std::env::var("GCR_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("GCR_THREADS={v:?} ignored (want a positive integer)");
                default_threads()
            }
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Maps `f` over `items` on [`thread_count`] workers; results in input
/// order. See [`scope_map_with`].
pub fn scope_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    scope_map_with(thread_count(), items, f)
}

/// Maps `f` over `items` on exactly `threads` workers (clamped to the item
/// count; `threads <= 1` runs serially in the calling thread). Results are
/// returned in input order. If any invocation of `f` panics, remaining
/// items are abandoned and the panic is re-raised here with its original
/// payload.
pub fn scope_map_with<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.min(n);
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let poisoned = AtomicBool::new(false);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
    std::thread::scope(|s| {
        let worker = || {
            loop {
                if poisoned.load(Ordering::Relaxed) {
                    return Ok(());
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    return Ok(());
                }
                match catch_unwind(AssertUnwindSafe(|| f(&items[i]))) {
                    Ok(r) => *slots[i].lock().unwrap() = Some(r),
                    Err(payload) => {
                        // Fail fast: stop handing out items, surface the
                        // first payload (others are dropped).
                        poisoned.store(true, Ordering::Relaxed);
                        return Err(payload);
                    }
                }
            }
        };
        let handles: Vec<_> = (0..threads).map(|_| s.spawn(worker)).collect();
        for h in handles {
            match h.join() {
                Ok(Ok(())) => {}
                Ok(Err(payload)) | Err(payload) => {
                    first_panic.get_or_insert(payload);
                }
            }
        }
    });
    if let Some(payload) = first_panic {
        std::panic::resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("every non-panicked slot is filled"))
        .collect()
}

/// Runs `f` on every item, in parallel, discarding results. Panics
/// propagate as in [`scope_map`].
pub fn par_for_each<T, F>(items: &[T], f: F)
where
    T: Sync,
    F: Fn(&T) + Sync,
{
    scope_map(items, |t| f(t));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_in_input_order_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 128] {
            let got = scope_map_with(threads, &items, |&x| x * x);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_item() {
        let empty: Vec<u32> = Vec::new();
        assert!(scope_map_with(8, &empty, |&x| x).is_empty());
        assert_eq!(scope_map_with(8, &[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_work_balances_dynamically() {
        // Items with very different costs must all complete exactly once.
        let done = AtomicU64::new(0);
        let items: Vec<usize> = (0..40).collect();
        let out = scope_map_with(4, &items, |&i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            done.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(done.load(Ordering::Relaxed), 40);
        assert_eq!(out, items);
    }

    #[test]
    fn panic_propagates_with_payload() {
        let items: Vec<u32> = (0..32).collect();
        let err = catch_unwind(AssertUnwindSafe(|| {
            scope_map_with(4, &items, |&x| {
                if x == 13 {
                    panic!("boom at {x}");
                }
                x
            })
        }))
        .unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("boom at 13"), "payload lost: {msg:?}");
    }

    #[test]
    fn serial_path_used_for_one_thread() {
        // threads=1 must run on the calling thread (no spawn): observable
        // via thread-local state.
        thread_local! { static HITS: std::cell::Cell<u32> = const { std::cell::Cell::new(0) }; }
        HITS.with(|h| h.set(0));
        scope_map_with(1, &[1, 2, 3], |_| HITS.with(|h| h.set(h.get() + 1)));
        assert_eq!(HITS.with(|h| h.get()), 3);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }
}
