#![warn(missing_docs)]

//! `gcr-par` — a hand-rolled scoped worker pool over [`std::thread`].
//!
//! The build container has no crates.io access, so the workspace cannot use
//! rayon; this crate provides the small slice of it the experiment sweeps
//! need (the same vendored-shim pattern as the in-workspace `proptest` and
//! `criterion`):
//!
//! * [`scope_map`] — apply a function to every item of a slice on a pool of
//!   scoped threads and collect the results **in input order**, regardless
//!   of thread count or scheduling. Determinism is structural: each item's
//!   result is written into its own slot, so parallel output is
//!   byte-identical to serial output for any pure `f`.
//! * [`par_for_each`] — same distribution, no results.
//! * Panic propagation: a panic on any worker is re-raised on the calling
//!   thread with its original payload once all workers have stopped.
//!
//! Thread count comes from the `GCR_THREADS` environment variable when set
//! (`0` or `1` force serial execution in the calling thread), otherwise
//! from [`std::thread::available_parallelism`]. Work is distributed
//! dynamically — an atomic next-item counter — so a sweep whose points
//! vary wildly in cost (big apps next to small ones) still balances.
//!
//! Beyond the batch pool, this crate is the workspace's fault-tolerance
//! runtime: [`isolate`] (panic containment and poisoned-lock recovery),
//! [`fault`] (the seeded `GCR_FAULT` injection plan), [`Pool`] (the
//! persistent bounded worker pool behind `gcr-serve`), and [`rng`] (the
//! shared deterministic splitmix64 stream).

pub mod fault;
pub mod isolate;
pub mod pool;
pub mod rng;

pub use pool::{Pool, PoolFull};

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// True on threads that already belong to a gcr-par pool ([`Pool`]
    /// workers and [`scope_map_with`] scoped workers). Nested fan-out from
    /// such a thread runs serially — every pool thread spawning its own
    /// pool would over-subscribe the host quadratically.
    static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Marks the current thread as a pool worker for its remaining lifetime
/// (used by [`Pool`] workers, which are long-lived).
pub(crate) fn enter_pool_thread() {
    IN_POOL.with(|c| c.set(true));
}

/// Whether the calling thread is already inside a gcr-par pool.
pub fn in_pool_thread() -> bool {
    IN_POOL.with(|c| c.get())
}

/// Number of worker threads a sweep will use: the `GCR_THREADS` override
/// when set (`0` means serial, like `1`), otherwise the host's available
/// parallelism.
pub fn thread_count() -> usize {
    match std::env::var("GCR_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            // 0 is a common "no parallelism" spelling (and what a broken
            // `nproc`-derived variable degrades to); honour it as serial
            // instead of warning and guessing.
            Ok(0) => 1,
            Ok(n) => n,
            Err(_) => {
                eprintln!("GCR_THREADS={v:?} ignored (want a non-negative integer)");
                default_threads()
            }
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Maps `f` over `items` on [`thread_count`] workers; results in input
/// order. See [`scope_map_with`].
pub fn scope_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    scope_map_with(thread_count(), items, f)
}

/// Maps `f` over `items` on exactly `threads` workers (clamped to the item
/// count; `threads <= 1` runs serially in the calling thread). Results are
/// returned in input order. If any invocation of `f` panics, remaining
/// items are abandoned and the panic is re-raised here with its original
/// payload.
///
/// A call from a thread that is already a gcr-par worker (a nested
/// `scope_map`, or a job inside a [`Pool`]) degrades to serial execution
/// regardless of `threads`: the host's parallelism is already claimed by
/// the outer pool, and N workers each spawning N more would over-subscribe
/// it N-fold.
pub fn scope_map_with<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.min(n);
    if threads <= 1 || in_pool_thread() {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let poisoned = AtomicBool::new(false);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
    std::thread::scope(|s| {
        let worker = || {
            enter_pool_thread();
            loop {
                if poisoned.load(Ordering::Relaxed) {
                    return Ok(());
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    return Ok(());
                }
                match catch_unwind(AssertUnwindSafe(|| f(&items[i]))) {
                    Ok(r) => *slots[i].lock().unwrap() = Some(r),
                    Err(payload) => {
                        // Fail fast: stop handing out items, surface the
                        // first payload (others are dropped).
                        poisoned.store(true, Ordering::Relaxed);
                        return Err(payload);
                    }
                }
            }
        };
        let handles: Vec<_> = (0..threads).map(|_| s.spawn(worker)).collect();
        for h in handles {
            match h.join() {
                Ok(Ok(())) => {}
                Ok(Err(payload)) | Err(payload) => {
                    first_panic.get_or_insert(payload);
                }
            }
        }
    });
    if let Some(payload) = first_panic {
        std::panic::resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("every non-panicked slot is filled"))
        .collect()
}

/// Runs `f` on every item, in parallel, discarding results. Panics
/// propagate as in [`scope_map`].
pub fn par_for_each<T, F>(items: &[T], f: F)
where
    T: Sync,
    F: Fn(&T) + Sync,
{
    scope_map(items, |t| f(t));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_in_input_order_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 128] {
            let got = scope_map_with(threads, &items, |&x| x * x);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_item() {
        let empty: Vec<u32> = Vec::new();
        assert!(scope_map_with(8, &empty, |&x| x).is_empty());
        assert_eq!(scope_map_with(8, &[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_work_balances_dynamically() {
        // Items with very different costs must all complete exactly once.
        let done = AtomicU64::new(0);
        let items: Vec<usize> = (0..40).collect();
        let out = scope_map_with(4, &items, |&i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            done.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(done.load(Ordering::Relaxed), 40);
        assert_eq!(out, items);
    }

    #[test]
    fn panic_propagates_with_payload() {
        let items: Vec<u32> = (0..32).collect();
        let err = catch_unwind(AssertUnwindSafe(|| {
            scope_map_with(4, &items, |&x| {
                if x == 13 {
                    panic!("boom at {x}");
                }
                x
            })
        }))
        .unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("boom at 13"), "payload lost: {msg:?}");
    }

    #[test]
    fn serial_path_used_for_one_thread() {
        // threads=1 must run on the calling thread (no spawn): observable
        // via thread-local state.
        thread_local! { static HITS: std::cell::Cell<u32> = const { std::cell::Cell::new(0) }; }
        HITS.with(|h| h.set(0));
        scope_map_with(1, &[1, 2, 3], |_| HITS.with(|h| h.set(h.get() + 1)));
        assert_eq!(HITS.with(|h| h.get()), 3);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn nested_scope_map_degrades_to_serial() {
        // An inner scope_map issued from a worker must not spawn another
        // pool: all inner work stays on the worker thread that issued it.
        let outer: Vec<u32> = (0..8).collect();
        let results = scope_map_with(4, &outer, |&x| {
            let worker = std::thread::current().id();
            let inner: Vec<u32> = (0..32).collect();
            let inner_ids = scope_map_with(16, &inner, |&y| (x + y, std::thread::current().id()));
            let serial = inner_ids.iter().all(|&(_, id)| id == worker);
            let sum: u32 = inner_ids.iter().map(|&(v, _)| v).sum();
            (serial, sum)
        });
        for (i, &(serial, sum)) in results.iter().enumerate() {
            assert!(serial, "outer item {i}: inner map left its worker thread");
            assert_eq!(sum, (0..32u32).map(|y| i as u32 + y).sum::<u32>());
        }
        // Depth > 2 is also safe: the flag is sticky for the worker scope.
        let deep = scope_map_with(2, &[1u32, 2], |&x| {
            scope_map_with(2, &[10u32, 20], move |&y| {
                scope_map_with(2, &[100u32], move |&z| x + y + z)[0]
            })
        });
        assert_eq!(deep, vec![vec![111, 121], vec![112, 122]]);
    }
}
