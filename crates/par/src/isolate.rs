//! Panic isolation helpers shared by every layer that treats a panic as a
//! recoverable, reportable event: the checked optimizer ladder
//! (`gcr-core`), the conformance fuzzer, the [`crate::Pool`] workers, and
//! the `gcr-serve` per-request boundary.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

thread_local! {
    static QUIET_PANICS: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Runs `f` with default panic-hook output suppressed on this thread. The
/// caller's `catch_unwind` treats a panic as a recoverable verdict
/// (degradation rung, isolated request, fuzz finding), so the hook's
/// stderr message would be noise. The flag is thread-local, so concurrent
/// callers on other worker threads don't silence each other's genuine
/// panics.
pub fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    static INSTALL: std::sync::Once = std::sync::Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(|q| q.get()) {
                prev(info);
            }
        }));
    });
    let saved = QUIET_PANICS.with(|q| q.replace(true));
    let out = f();
    QUIET_PANICS.with(|q| q.set(saved));
    out
}

/// Best-effort human-readable text of a panic payload.
pub fn panic_msg(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "panicked".to_string()
    }
}

/// Runs `f` under [`catch_unwind`] with hook output suppressed; a panic
/// comes back as `Err(message)` instead of unwinding further. This is the
/// per-request isolation primitive: one poisoned computation is converted
/// into a value, and the calling thread survives to serve the next one.
pub fn run_isolated<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    quiet_panics(|| catch_unwind(AssertUnwindSafe(f))).map_err(panic_msg)
}

/// Locks `m`, recovering from poisoning. An isolated panic may have died
/// while holding a shared lock; the standard library then marks the mutex
/// poisoned forever, and an `unwrap()` would convert one quarantined
/// request into a crash of every later one. All workspace structures
/// guarded this way uphold their invariants across unwinds (single-call
/// map inserts, counter bumps), so recovery is sound; `poisoned` counts
/// each recovery so the event stays observable in reports.
pub fn lock_recover<'a, T>(m: &'a Mutex<T>, poisoned: &AtomicU64) -> MutexGuard<'a, T> {
    match m.lock() {
        Ok(g) => g,
        Err(e) => {
            poisoned.fetch_add(1, Ordering::Relaxed);
            m.clear_poison();
            e.into_inner()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_isolated_returns_value_or_message() {
        assert_eq!(run_isolated(|| 41 + 1), Ok(42));
        let err = run_isolated(|| -> u32 { panic!("kaboom {}", 7) }).unwrap_err();
        assert!(err.contains("kaboom 7"), "{err}");
        // The thread survives and can isolate again.
        assert_eq!(run_isolated(|| "still alive"), Ok("still alive"));
    }

    #[test]
    fn lock_recover_survives_poisoning() {
        let m = Mutex::new(vec![1, 2, 3]);
        let poisoned = AtomicU64::new(0);
        // Poison the lock by panicking while holding it.
        let _ = run_isolated(|| {
            let _g = m.lock().unwrap();
            panic!("die holding the lock");
        });
        assert!(m.is_poisoned());
        let g = lock_recover(&m, &poisoned);
        assert_eq!(*g, vec![1, 2, 3]);
        drop(g);
        assert_eq!(poisoned.load(Ordering::Relaxed), 1);
        // Recovery is durable: the next lock is clean.
        assert!(!m.is_poisoned());
        drop(lock_recover(&m, &poisoned));
        assert_eq!(poisoned.load(Ordering::Relaxed), 1);
    }
}
