//! A persistent worker pool with a bounded admission queue — the execution
//! substrate of the `gcr-serve` daemon.
//!
//! [`crate::scope_map`] is batch-shaped: it spawns workers for one job
//! list and joins them. A long-running service instead needs workers that
//! outlive any request, a queue that *sheds load* when full instead of
//! growing without bound, and the guarantee that one panicking job never
//! takes a worker (or the process) down. [`Pool`] provides exactly that:
//!
//! * `try_submit` either enqueues the job or returns [`PoolFull`]
//!   immediately — admission control for the caller to convert into an
//!   `Overloaded` diagnostic.
//! * Every job runs under [`crate::isolate::run_isolated`]; a panic is
//!   counted and the worker loops on to the next job.
//! * Workers mark themselves as pool threads, so nested
//!   [`crate::scope_map`] calls inside a job degrade to serial execution
//!   instead of over-subscribing the host.
//! * Dropping the pool drains: the queue closes, queued jobs finish, and
//!   workers are joined.

use crate::isolate::run_isolated;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// The bounded admission queue rejected a job because it was full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolFull;

impl std::fmt::Display for PoolFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker pool admission queue is full")
    }
}

impl std::error::Error for PoolFull {}

/// A fixed set of worker threads fed from a bounded queue.
pub struct Pool {
    tx: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    isolated_panics: Arc<AtomicU64>,
}

impl Pool {
    /// A pool of `workers` threads (min 1) behind a queue holding at most
    /// `queue` not-yet-started jobs (min 1).
    pub fn new(workers: usize, queue: usize) -> Pool {
        let (tx, rx) = sync_channel::<Job>(queue.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let isolated_panics = Arc::new(AtomicU64::new(0));
        let workers = (0..workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let panics = Arc::clone(&isolated_panics);
                std::thread::Builder::new()
                    .name(format!("gcr-pool-{i}"))
                    .spawn(move || worker_loop(&rx, &panics))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool { tx: Some(tx), workers, isolated_panics }
    }

    /// Enqueues `job`, or returns [`PoolFull`] without blocking when the
    /// queue is at capacity — the shed-load path.
    pub fn try_submit(&self, job: impl FnOnce() + Send + 'static) -> Result<(), PoolFull> {
        let tx = self.tx.as_ref().expect("pool not drained");
        match tx.try_send(Box::new(job)) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => Err(PoolFull),
        }
    }

    /// Jobs whose panic was caught and absorbed by a worker.
    pub fn isolated_panics(&self) -> u64 {
        self.isolated_panics.load(Ordering::Relaxed)
    }

    /// Closes the queue, lets queued jobs finish, and joins every worker.
    /// Equivalent to dropping the pool, but explicit at shutdown sites.
    pub fn drain(mut self) {
        self.drain_in_place();
    }

    fn drain_in_place(&mut self) {
        self.tx = None; // Closing the channel ends every worker loop.
        for h in self.workers.drain(..) {
            // A worker that somehow panicked outside job isolation has
            // nothing more to give us; draining must not propagate it.
            let _ = h.join();
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.drain_in_place();
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>, panics: &AtomicU64) {
    crate::enter_pool_thread();
    loop {
        // Hold the lock only while receiving, not while running the job.
        let job = match rx.lock() {
            Ok(g) => g.recv(),
            Err(_) => return, // Receiver poisoned: pool is torn down.
        };
        match job {
            Ok(job) => {
                if run_isolated(job).is_err() {
                    panics.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(_) => return, // Channel closed: drain complete.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;
    use std::time::Duration;

    #[test]
    fn runs_jobs_and_drains() {
        let pool = Pool::new(3, 16);
        let (tx, rx) = channel();
        for i in 0..10u32 {
            let tx = tx.clone();
            pool.try_submit(move || tx.send(i * 2).unwrap()).unwrap();
        }
        let mut got: Vec<u32> =
            (0..10).map(|_| rx.recv_timeout(Duration::from_secs(5)).unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).map(|i| i * 2).collect::<Vec<_>>());
        pool.drain();
    }

    #[test]
    fn panicking_job_is_isolated_and_worker_survives() {
        let pool = Pool::new(1, 8);
        let (tx, rx) = channel();
        pool.try_submit(|| panic!("job 1 dies")).unwrap();
        let tx2 = tx.clone();
        pool.try_submit(move || tx2.send("job 2 ran").unwrap()).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), "job 2 ran");
        assert_eq!(pool.isolated_panics(), 1, "the panic must be counted, not fatal");
    }

    #[test]
    fn full_queue_sheds_instead_of_blocking() {
        let pool = Pool::new(1, 1);
        let (gate_tx, gate_rx) = channel::<()>();
        // Occupy the single worker until the gate opens.
        pool.try_submit(move || {
            let _ = gate_rx.recv_timeout(Duration::from_secs(10));
        })
        .unwrap();
        // Fill the queue slot, then observe the shed path. The busy worker
        // may still be picking up the first job, so allow one grace accept.
        let mut shed = 0;
        for _ in 0..3 {
            if pool.try_submit(|| {}).is_err() {
                shed += 1;
            }
        }
        assert!(shed >= 1, "a bounded queue must reject, not block");
        gate_tx.send(()).unwrap();
        pool.drain();
    }

    #[test]
    fn nested_scope_map_inside_pool_runs_serial() {
        let pool = Pool::new(2, 4);
        let (tx, rx) = channel();
        pool.try_submit(move || {
            let caller = std::thread::current().id();
            let items: Vec<u32> = (0..16).collect();
            let ids = crate::scope_map_with(8, &items, |&x| (x, std::thread::current().id()));
            let all_serial = ids.iter().all(|&(_, id)| id == caller);
            tx.send(all_serial).unwrap();
        })
        .unwrap();
        assert!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            "scope_map inside a pool worker must degrade to serial"
        );
        pool.drain();
    }
}
