//! Quickstart: parse a LoopLang program, apply reuse-based loop fusion,
//! and watch the reuse distances collapse (the paper's Figure 1 effect).
//!
//! Run with: `cargo run --example quickstart`

use global_cache_reuse::exec::Machine;
use global_cache_reuse::ir::{print::print_program, ParamBinding};
use global_cache_reuse::opt::{fuse_program, FusionOptions};
use global_cache_reuse::reuse::DistanceSink;

fn main() {
    // The paper's Figure 4(a): two loops separated by boundary statements.
    let src = "
program fig4a
param N
array A[N], B[N]

for i = 3, N - 2 {
  A[i] = f(A[i-1])
}
A[1] = A[N]
A[2] = 0.0
for i = 3, N {
  B[i] = g(A[i-2])
}
";
    let original = global_cache_reuse::frontend::parse(src).expect("parses");
    println!("--- original ---\n{}", print_program(&original));

    let mut fused = original.clone();
    let report = fuse_program(&mut fused, &FusionOptions::default());
    println!("--- after reuse-based fusion ---\n{}", print_program(&fused));
    println!(
        "fused {} loop pair(s), embedded {} statement(s)\n",
        report.total_fused(),
        report.embedded
    );

    // Measure reuse distances of both versions at N = 4096.
    for (name, prog) in [("original", &original), ("fused", &fused)] {
        let mut machine = Machine::new(prog, ParamBinding::new(vec![4096]));
        let mut sink = DistanceSink::elements();
        machine.run(&mut sink);
        let h = &sink.analyzer.hist;
        let long = h.at_least(1024);
        println!("{name:>8}: {} reuses, {} with distance >= 1024 elements", h.reuses, long);
    }
    println!("\nFusion turns the O(N) reuse distances between the loops into O(1).");
}
