//! The Section 2.2 limit study on a user program: capture the instruction
//! trace, replay it under the ideal dataflow order and the reuse-driven
//! order of Figure 2, and compare reuse-distance histograms.
//!
//! Run with: `cargo run --release --example limit_study`

use global_cache_reuse::exec::Machine;
use global_cache_reuse::ir::ParamBinding;
use global_cache_reuse::reuse::driven::{
    ideal_parallel_order, measure_order, measure_program_order, reuse_driven_order, DepGraph,
};
use global_cache_reuse::reuse::TraceCapture;

fn main() {
    // A program with classic cross-loop reuse: three passes over the grid.
    let src = "
program passes
param N
array A[N, N], B[N, N]

for i = 1, N {
  for j = 1, N {
    A[j, i] = f(A[j, i])
  }
}
for i = 1, N {
  for j = 1, N {
    B[j, i] = g(A[j, i])
  }
}
for i = 1, N {
  for j = 1, N {
    A[j, i] = h(A[j, i], B[j, i])
  }
}
";
    let prog = global_cache_reuse::frontend::parse(src).expect("parses");
    let mut machine = Machine::new(&prog, ParamBinding::new(vec![96]));
    let mut cap = TraceCapture::new();
    machine.run(&mut cap);
    let trace = cap.finish();
    println!(
        "trace: {} instructions, {} accesses, {} distinct elements\n",
        trace.len(),
        trace.total_accesses(),
        DepGraph::build(&trace).data_count()
    );

    let (h_prog, _) = measure_program_order(&trace);
    let deps = DepGraph::build(&trace);
    let ideal = ideal_parallel_order(&trace, &deps);
    let (h_ideal, _) = measure_order(&trace, &ideal);
    let driven = reuse_driven_order(&trace);
    let (h_driven, _) = measure_order(&trace, &driven);

    println!("{:<16} {:>14} {:>20}", "order", "reuses", "distance >= 4096");
    for (name, h) in
        [("program order", &h_prog), ("ideal parallel", &h_ideal), ("reuse-driven", &h_driven)]
    {
        println!("{:<16} {:>14} {:>20}", name, h.reuses, h.at_least(4096));
    }
    println!("\nReuse-driven execution chases each value's next consumer, so the");
    println!("three passes interleave and the long cross-pass reuses disappear —");
    println!("the bound on what source-level loop fusion can hope to achieve.");
}
