//! Optimizing a multi-phase stencil application end to end: compare the
//! program versions of the paper's evaluation (original, SGI-like local
//! optimization, fusion only, fusion + multi-level regrouping) on a
//! simulated memory hierarchy — a miniature Figure 10.
//!
//! Run with: `cargo run --release --example optimize_stencil`

use global_cache_reuse::cache::{CostModel, HierarchySink, MemoryHierarchy};
use global_cache_reuse::exec::Machine;
use global_cache_reuse::ir::ParamBinding;
use global_cache_reuse::opt::pipeline::{apply_strategy, Strategy};
use global_cache_reuse::opt::regroup::RegroupLevel;

const SRC: &str = "
program smooth
param N
array A[N, N], B[N, N], C[N, N], W[N, N]

// phase 1: weighted 5-point smoothing of A into B
for i = 2, N - 1 {
  for j = 2, N - 1 {
    B[j, i] = W[j, i] * (A[j, i] + 0.25 * (A[j-1, i] + A[j+1, i] + A[j, i-1] + A[j, i+1]))
  }
}
// phase 2: residual of the smoothing
for i = 2, N - 1 {
  for j = 2, N - 1 {
    C[j, i] = B[j, i] - A[j, i]
  }
}
// phase 3: corrected update
for i = 2, N - 1 {
  for j = 2, N - 1 {
    A[j, i] = B[j, i] + 0.5 * C[j, i] * W[j, i]
  }
}
";

fn main() {
    let prog = global_cache_reuse::frontend::parse(SRC).expect("parses");
    let n = 257i64;
    let steps = 3;
    println!("four arrays of {n}x{n} doubles, {steps} time steps\n");
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "version", "cycles", "L1 miss", "L2 miss", "TLB miss", "time"
    );
    let mut base_cycles = None;
    for strategy in [
        Strategy::Original,
        Strategy::Sgi,
        Strategy::FusionOnly { levels: 2 },
        Strategy::FusionRegroup { levels: 2, regroup: RegroupLevel::Multi },
    ] {
        let opt = apply_strategy(&prog, strategy);
        let bind = ParamBinding::new(vec![n]);
        let layout = opt.layout(&bind);
        let mut machine = Machine::with_layout(&opt.program, bind, layout);
        let mut sink = HierarchySink::new(MemoryHierarchy::origin2000_scaled(8, 64));
        machine.run_steps(&mut sink, steps);
        let misses = sink.hierarchy.counts();
        let cycles = CostModel::default().cycles(&machine.stats(), &misses);
        let base = *base_cycles.get_or_insert(cycles);
        println!(
            "{:<14} {:>10.2e} {:>10} {:>10} {:>10} {:>7.2}x",
            strategy.label(),
            cycles,
            misses.l1,
            misses.l2,
            misses.tlb,
            cycles / base
        );
    }
    println!("\nFusion shortens the cross-phase reuse of A, B, C and W; regrouping");
    println!("then interleaves the arrays so each cache line carries useful data.");
}
