//! Data-layout laboratory: build a program with the builder API (no
//! frontend), apply multi-level data regrouping, and inspect the resulting
//! interleaved address functions — the paper's Figure 7 transformation.
//!
//! Run with: `cargo run --example layout_lab`

use global_cache_reuse::exec::DataLayout;
use global_cache_reuse::ir::{Expr, LinExpr, ParamBinding, ProgramBuilder, Subscript};
use global_cache_reuse::opt::regroup::{regroup, RegroupLevel, RegroupOptions};

fn main() {
    // Figure 7 of the paper: A and B are used by one inner loop, C by a
    // sibling inner loop of the same outer loop.
    let mut b = ProgramBuilder::new("fig7");
    let n = b.param("N");
    let dims = [LinExpr::param(n), LinExpr::param(n)];
    let a = b.array("A", &dims);
    let bb = b.array("B", &dims);
    let c = b.array("C", &dims);
    let i = b.var("i");
    let j1 = b.var("j");
    let j2 = b.var("j2");
    let rhs1 = {
        let x = b.read(a, vec![Subscript::var(j1, 0), Subscript::var(i, 0)]);
        let y = b.read(bb, vec![Subscript::var(j1, 0), Subscript::var(i, 0)]);
        Expr::Call("g", vec![x, y])
    };
    let s1 = b.assign(a, vec![Subscript::var(j1, 0), Subscript::var(i, 0)], rhs1);
    let inner1 = b.for_(j1, LinExpr::konst(1), LinExpr::param(n), vec![s1]);
    let rhs2 = {
        let x = b.read(c, vec![Subscript::var(j2, 0), Subscript::var(i, 0)]);
        Expr::Call("t", vec![x])
    };
    let s2 = b.assign(c, vec![Subscript::var(j2, 0), Subscript::var(i, 0)], rhs2);
    let inner2 = b.for_(j2, LinExpr::konst(1), LinExpr::param(n), vec![s2]);
    let outer = b.for_(i, LinExpr::konst(1), LinExpr::param(n), vec![inner1, inner2]);
    b.push(outer);
    let prog = b.finish();

    println!("{}", global_cache_reuse::ir::print::print_program(&prog));
    let bind = ParamBinding::new(vec![4]);

    for level in [RegroupLevel::Multi, RegroupLevel::ElementOnly, RegroupLevel::AvoidInnermost] {
        let opts = RegroupOptions { level, ..Default::default() };
        let (layout, report) = regroup(&prog, &bind, &opts);
        println!("--- {level:?} ---");
        for (k, al) in layout.arrays.iter().enumerate() {
            println!("  {:<2} base {:>4}  strides {:?}", prog.arrays[k].name, al.base, al.strides);
        }
        describe(&layout, &report);
    }
    println!("Multi-level grouping is the paper's Figure 7: A and B interleave per");
    println!("element (D[1,j,1,i], D[2,j,1,i]) while C joins them per column (D[j,2,i]).");
}

fn describe(layout: &DataLayout, report: &global_cache_reuse::opt::regroup::RegroupReport) {
    for (names, level) in &report.groups {
        println!("  grouped {} at the {} level", names.join("+"), level);
    }
    println!("  total footprint: {} bytes\n", layout.total_bytes);
}
