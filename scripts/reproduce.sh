#!/usr/bin/env bash
# Regenerates every experiment output under results/ (see EXPERIMENTS.md).
# fig3/fig10/sp_stats/table6 also write results/<bin>.json report sets.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
for bin in table_apps fig10 sp_stats table6 bound_check fig3 evadable; do
  echo "== $bin =="
  cargo run --release -q -p gcr-bench --bin "$bin" | tee "results/$bin.txt"
done
echo "== fig10 --ablation =="
cargo run --release -q -p gcr-bench --bin fig10 -- --ablation \
  --json results/fig10_ablation.json | tee results/fig10_ablation.txt
