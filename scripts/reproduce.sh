#!/usr/bin/env bash
# Regenerates every experiment output under results/ (see EXPERIMENTS.md).
# fig3/fig10/sp_stats/table6 also write results/<bin>.json report sets.
#
# The measurement binaries run on the parallel sweep engine: GCR_THREADS
# caps the worker count (default: all cores; output is byte-identical for
# any value), and the shared GCR_MEASURE_CACHE file below lets the fig10
# ablation pass reuse the base run's measurements instead of re-simulating.
# Fail loudly: any command failure, unset variable, or mid-pipe error
# aborts the run instead of silently producing partial results, and every
# interpolation is quoted (with `--` separators before positional paths)
# so a flag-like value can never be parsed as an option or create a
# flag-named file at the repo root again.
set -euo pipefail
cd -- "$(dirname -- "$0")/.."
mkdir -p -- results
MEASURE_CACHE="$(mktemp -t gcr-measure-cache.XXXXXX)"
trap 'rm -f -- "$MEASURE_CACHE"' EXIT
export GCR_MEASURE_CACHE="$MEASURE_CACHE"
for bin in table_apps fig10 sp_stats table6 bound_check fig3 evadable; do
  echo "== $bin =="
  cargo run --release -q -p gcr-bench --bin "$bin" | tee -- "results/$bin.txt"
done
echo "== fig10 --ablation =="
cargo run --release -q -p gcr-bench --bin fig10 -- --ablation \
  --json results/fig10_ablation.json | tee -- results/fig10_ablation.txt
echo "== sweep_bench =="
cargo run --release -q -p gcr-bench --bin sweep_bench
echo "== serve_bench =="
cargo run --release -q -p gcr-serve --bin serve_bench
