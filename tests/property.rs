//! Property-based tests: random programs in the paper's input model are
//! pushed through every transformation, checking semantic preservation,
//! structural validity, layout bijectivity and printer/parser round-trips.

use global_cache_reuse::exec::{Machine, NullSink};
use global_cache_reuse::ir::{
    Expr, LinExpr, ParamBinding, Program, ProgramBuilder, Stmt, Subscript,
};
use global_cache_reuse::opt::pipeline::{apply_strategy, Strategy as OptStrategy};
use global_cache_reuse::opt::regroup::RegroupLevel;
use global_cache_reuse::opt::{fuse_program, optimize_checked, FusionOptions, SafetyOptions};
use proptest::prelude::*;

const NARRAYS: usize = 3;

/// One random statement inside a loop: `X[i+a] = f(Y[i+b], Z[i+c])`.
#[derive(Clone, Debug)]
struct RandStmt {
    lhs: usize,
    lhs_off: i64,
    rhs1: usize,
    rhs1_off: i64,
    rhs2: Option<(usize, i64)>,
}

/// A random top-level item.
#[derive(Clone, Debug)]
enum RandItem {
    /// Loop from `3` to `N - 3` over the given statements.
    Loop(Vec<RandStmt>),
    /// Standalone boundary statement `X[c1] = f(Y[c2])`.
    Boundary { lhs: usize, c1: i64, rhs: usize, c2: i64 },
}

fn stmt_strategy() -> impl Strategy<Value = RandStmt> {
    (0..NARRAYS, -2i64..=2, 0..NARRAYS, -2i64..=2, proptest::option::of((0..NARRAYS, -2i64..=2)))
        .prop_map(|(lhs, lhs_off, rhs1, rhs1_off, rhs2)| RandStmt {
            lhs,
            lhs_off,
            rhs1,
            rhs1_off,
            rhs2,
        })
}

fn item_strategy() -> impl Strategy<Value = RandItem> {
    prop_oneof![
        4 => proptest::collection::vec(stmt_strategy(), 1..3).prop_map(RandItem::Loop),
        1 => (0..NARRAYS, 1i64..=3, 0..NARRAYS, 1i64..=3)
            .prop_map(|(lhs, c1, rhs, c2)| RandItem::Boundary { lhs, c1, rhs, c2 }),
    ]
}

fn build(items: &[RandItem]) -> Program {
    let mut b = ProgramBuilder::new("rand");
    let n = b.param("N");
    let arrays: Vec<_> =
        (0..NARRAYS).map(|k| b.array(format!("A{k}"), &[LinExpr::param(n)])).collect();
    for (li, item) in items.iter().enumerate() {
        match item {
            RandItem::Loop(stmts) => {
                let var = b.var(format!("i{li}"));
                let body: Vec<Stmt> = stmts
                    .iter()
                    .map(|s| {
                        let mut rhs = b.read(arrays[s.rhs1], vec![Subscript::var(var, s.rhs1_off)]);
                        if let Some((a2, o2)) = s.rhs2 {
                            let r2 = b.read(arrays[a2], vec![Subscript::var(var, o2)]);
                            rhs = Expr::add(rhs, r2);
                        }
                        rhs = Expr::Call("f", vec![rhs]);
                        b.assign(arrays[s.lhs], vec![Subscript::var(var, s.lhs_off)], rhs)
                    })
                    .collect();
                let l = b.for_(var, LinExpr::konst(3), LinExpr::param(n).add_const(-3), body);
                b.push(l);
            }
            RandItem::Boundary { lhs, c1, rhs, c2 } => {
                let r = b.read(arrays[*rhs], vec![Subscript::konst(*c2)]);
                let s =
                    b.assign(arrays[*lhs], vec![Subscript::konst(*c1)], Expr::Call("g", vec![r]));
                b.push(s);
            }
        }
    }
    b.finish()
}

/// Runs a program and returns all array contents.
fn run(
    prog: &Program,
    layout: Option<global_cache_reuse::exec::DataLayout>,
    n: i64,
) -> Vec<Vec<f64>> {
    let bind = ParamBinding::new(vec![n]);
    let mut m = match layout {
        Some(l) => Machine::with_layout(prog, bind, l),
        None => Machine::new(prog, bind),
    };
    m.run_steps(&mut NullSink, 2);
    (0..prog.arrays.len())
        .map(|i| m.read_array(global_cache_reuse::ir::ArrayId::from_index(i)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Reuse-based fusion preserves program semantics exactly (instance
    /// computations are unchanged, only reordered within dependences).
    #[test]
    fn fusion_preserves_semantics(items in proptest::collection::vec(item_strategy(), 1..6)) {
        let orig = build(&items);
        let mut fused = orig.clone();
        fuse_program(&mut fused, &FusionOptions::default());
        prop_assert!(global_cache_reuse::ir::validate::validate(&fused).is_ok());
        let (a, b) = (run(&orig, None, 16), run(&fused, None, 16));
        prop_assert_eq!(a, b);
    }

    /// The whole pipeline (prelim + fusion + regrouped layout) preserves
    /// semantics under the interleaved layout.
    #[test]
    fn pipeline_preserves_semantics(items in proptest::collection::vec(item_strategy(), 1..6)) {
        let orig = build(&items);
        let opt = apply_strategy(
            &orig,
            OptStrategy::FusionRegroup { levels: 2, regroup: RegroupLevel::Multi },
        );
        let bind = ParamBinding::new(vec![14]);
        let layout = opt.layout(&bind);
        let (a, b) = (run(&orig, None, 14), run(&opt.program, Some(layout), 14));
        prop_assert_eq!(a, b);
    }

    /// The SGI-like baseline is also semantics-preserving.
    #[test]
    fn baseline_preserves_semantics(items in proptest::collection::vec(item_strategy(), 1..6)) {
        let orig = build(&items);
        let opt = apply_strategy(&orig, OptStrategy::Sgi);
        let bind = ParamBinding::new(vec![12]);
        let layout = opt.layout(&bind);
        let (a, b) = (run(&orig, None, 12), run(&opt.program, Some(layout), 12));
        prop_assert_eq!(a, b);
    }

    /// Regrouped layouts are bijections: distinct (array, element) pairs
    /// get distinct, in-bounds addresses.
    #[test]
    fn regrouped_layout_is_bijective(items in proptest::collection::vec(item_strategy(), 1..6)) {
        let prog = build(&items);
        let bind = ParamBinding::new(vec![9]);
        let (layout, _) = global_cache_reuse::opt::regroup::regroup(
            &prog,
            &bind,
            &Default::default(),
        );
        let mut seen = std::collections::HashSet::new();
        for al in &layout.arrays {
            let n = al.extents.first().copied().unwrap_or(1);
            for i in 1..=n.max(1) {
                let idx: Vec<i64> = al.extents.iter().map(|_| i.min(*al.extents.first().unwrap())).collect();
                let a = al.addr(&idx);
                prop_assert!(a + 8 <= layout.total_bytes);
                prop_assert!(seen.insert(a), "address {a} assigned twice");
            }
        }
    }

    /// Printed programs reparse to the same text (printer is a fixpoint of
    /// print ∘ parse), before and after fusion.
    #[test]
    fn print_parse_fixpoint(items in proptest::collection::vec(item_strategy(), 1..5)) {
        for fused in [false, true] {
            let mut prog = build(&items);
            if fused {
                fuse_program(&mut prog, &FusionOptions::default());
            }
            let t1 = global_cache_reuse::ir::print::print_program(&prog);
            let p2 = global_cache_reuse::frontend::parse(&t1);
            prop_assert!(p2.is_ok(), "reparse failed: {:?}\n{}", p2.err(), t1);
            let t2 = global_cache_reuse::ir::print::print_program(&p2.unwrap());
            prop_assert_eq!(t1, t2);
        }
    }

    /// Fusion reports are consistent: loop counts drop by exactly the
    /// number of fusions at level 1 (every fusion merges two level-1 loops,
    /// peels notwithstanding — peeled statements are not loops).
    #[test]
    fn fusion_report_accounting(items in proptest::collection::vec(item_strategy(), 1..6)) {
        let mut prog = build(&items);
        let before = prog.count_nests();
        let rep = fuse_program(&mut prog, &FusionOptions { max_levels: 1, ..Default::default() });
        let after = prog.count_nests();
        prop_assert_eq!(before, after + rep.fused[0]);
    }
}

// ---------------------------------------------------------------------------
// Fail-safe pipeline: optimize_checked must never panic, and on well-formed
// programs it must succeed without touching a fallback rung.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Anything the parser accepts, the checked optimizer survives: it may
    /// return an error (or degrade), but it must not panic — even on
    /// programs whose original version cannot execute.
    #[test]
    fn optimize_checked_never_panics_on_parsed_soup(words in proptest::collection::vec(
        prop_oneof![
            Just("program".to_string()), Just("p".to_string()),
            Just("param".to_string()), Just("N".to_string()),
            Just("array".to_string()), Just("A".to_string()),
            Just("B".to_string()), Just("for".to_string()),
            Just("i".to_string()), Just("=".to_string()),
            Just(",".to_string()), Just("{".to_string()),
            Just("}".to_string()), Just("[".to_string()),
            Just("]".to_string()), Just("+".to_string()),
            Just("-".to_string()), Just("*".to_string()),
            Just("1".to_string()), Just("2".to_string()),
            Just("f".to_string()), Just("(".to_string()),
            Just(")".to_string()), Just("\n".to_string()),
        ], 0..48)) {
        if let Ok(prog) = global_cache_reuse::frontend::parse(&words.join(" ")) {
            let safety = SafetyOptions {
                fuel: Some(200_000),
                max_bytes: Some(1 << 20),
                ..Default::default()
            };
            let _ = optimize_checked(&prog, &fuse_regroup_opts(), &safety);
        }
    }
}

fn fuse_regroup_opts() -> global_cache_reuse::opt::pipeline::OptimizeOptions {
    OptStrategy::FusionRegroup { levels: 2, regroup: RegroupLevel::Multi }.options()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// On well-formed random programs the checked pipeline succeeds, keeps
    /// its oracle enabled, and never needs a fallback: every pass it runs
    /// is verified clean.
    #[test]
    fn checked_pipeline_is_clean_on_generated_programs(
        items in proptest::collection::vec(item_strategy(), 1..5),
    ) {
        let orig = build(&items);
        let opt = optimize_checked(&orig, &fuse_regroup_opts(), &SafetyOptions::default());
        prop_assert!(opt.is_ok(), "{:?}", opt.err());
        let opt = opt.unwrap();
        prop_assert!(opt.robustness.oracle_disabled.is_none());
        prop_assert!(!opt.robustness.degraded(), "{:?}", opt.robustness.describe());
        prop_assert!(opt.robustness.checks > 0);
    }
}

// ---------------------------------------------------------------------------
// Two-dimensional programs: multi-level fusion with outer-guard entries
// ---------------------------------------------------------------------------

/// A random 2-D stencil statement `X[j+a, i+b] = f(Y[j+c, i+d], ...)`.
#[derive(Clone, Debug)]
struct Rand2D {
    lhs: usize,
    lo: (i64, i64),
    rhs: usize,
    ro: (i64, i64),
    /// Loop bounds offset: nest ranges over `[3+k, N-3]` to vary bounds.
    lo_shift: i64,
}

fn stmt2d() -> impl Strategy<Value = Rand2D> {
    (0..NARRAYS, (-1i64..=1, -1i64..=1), 0..NARRAYS, (-2i64..=2, -2i64..=2), 0i64..=2)
        .prop_map(|(lhs, lo, rhs, ro, lo_shift)| Rand2D { lhs, lo, rhs, ro, lo_shift })
}

fn build2d(items: &[Rand2D]) -> Program {
    let mut b = ProgramBuilder::new("rand2d");
    let n = b.param("N");
    let arrays: Vec<_> = (0..NARRAYS)
        .map(|k| b.array(format!("B{k}"), &[LinExpr::param(n), LinExpr::param(n)]))
        .collect();
    for (li, it) in items.iter().enumerate() {
        let iv = b.var(format!("i{li}"));
        let jv = b.var(format!("j{li}"));
        let rhs =
            b.read(arrays[it.rhs], vec![Subscript::var(jv, it.ro.0), Subscript::var(iv, it.ro.1)]);
        let s = b.assign(
            arrays[it.lhs],
            vec![Subscript::var(jv, it.lo.0), Subscript::var(iv, it.lo.1)],
            Expr::Call("f", vec![rhs]),
        );
        let inner =
            b.for_(jv, LinExpr::konst(3 + it.lo_shift), LinExpr::param(n).add_const(-3), vec![s]);
        let outer = b.for_(
            iv,
            LinExpr::konst(3 + it.lo_shift),
            LinExpr::param(n).add_const(-3),
            vec![inner],
        );
        b.push(outer);
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Multi-level fusion of random 2-D nests (with unequal bounds, hence
    /// outer-guard entries) preserves semantics exactly.
    #[test]
    fn twod_fusion_preserves_semantics(items in proptest::collection::vec(stmt2d(), 1..5)) {
        let orig = build2d(&items);
        let mut fused = orig.clone();
        fuse_program(&mut fused, &FusionOptions::default());
        prop_assert!(global_cache_reuse::ir::validate::validate(&fused).is_ok());
        let (a, b) = (run(&orig, None, 14), run(&fused, None, 14));
        prop_assert_eq!(a, b);
    }

    /// ... and the regrouped layout still computes the same values.
    #[test]
    fn twod_pipeline_preserves_semantics(items in proptest::collection::vec(stmt2d(), 1..5)) {
        let orig = build2d(&items);
        let opt = apply_strategy(
            &orig,
            OptStrategy::FusionRegroup {
                levels: 3,
                regroup: RegroupLevel::Multi,
            },
        );
        let bind = ParamBinding::new(vec![13]);
        let layout = opt.layout(&bind);
        let (a, b) = (run(&orig, None, 13), run(&opt.program, Some(layout), 13));
        prop_assert_eq!(a, b);
    }

    /// Fused 2-D programs still print/parse round-trip (guards included).
    #[test]
    fn twod_print_parse_fixpoint(items in proptest::collection::vec(stmt2d(), 1..4)) {
        let mut prog = build2d(&items);
        fuse_program(&mut prog, &FusionOptions::default());
        let t1 = global_cache_reuse::ir::print::print_program(&prog);
        let p2 = global_cache_reuse::frontend::parse(&t1);
        prop_assert!(p2.is_ok(), "reparse failed: {:?}\n{}", p2.err(), t1);
        let t2 = global_cache_reuse::ir::print::print_program(&p2.unwrap());
        prop_assert_eq!(t1, t2);
    }
}
