//! Cross-validation of the two measurement substrates against the theorem
//! the paper's Section 2.1 states: "On a perfect cache (fully associative
//! with LRU replacement), a data reuse hits in cache if and only if its
//! reuse distance is smaller than the cache size."
//!
//! The reuse-distance analyzer and the cache simulator are independent
//! implementations; this equivalence catches bugs in either.

use global_cache_reuse::cache::{Cache, CacheConfig};
use global_cache_reuse::reuse::ReuseDistanceAnalyzer;
use proptest::prelude::*;

fn check_equivalence(addrs: &[u64], capacity_lines: usize, line: u64) {
    let mut cache = Cache::new(CacheConfig {
        size: capacity_lines * line as usize,
        line: line as usize,
        assoc: capacity_lines, // fully associative
    });
    let mut analyzer = ReuseDistanceAnalyzer::new(line);
    for &a in addrs {
        let hit = cache.access(a);
        let dist = analyzer.access(a);
        match dist {
            None => assert!(!hit, "cold access at {a:#x} cannot hit"),
            Some(d) => assert_eq!(
                hit,
                d < capacity_lines as u64,
                "addr {a:#x}: distance {d}, capacity {capacity_lines}"
            ),
        }
    }
}

#[test]
fn lru_theorem_on_program_traces() {
    // Use a real application trace at line granularity.
    use global_cache_reuse::exec::{AccessEvent, Machine, TraceSink};
    struct Cap(Vec<u64>);
    impl TraceSink for Cap {
        fn access(&mut self, ev: AccessEvent) {
            self.0.push(ev.addr);
        }
    }
    let prog = gcr_apps::adi::program();
    let mut m = Machine::new(&prog, global_cache_reuse::ir::ParamBinding::new(vec![24]));
    let mut cap = Cap(Vec::new());
    m.run(&mut cap);
    for capacity in [4usize, 16, 64, 256] {
        check_equivalence(&cap.0, capacity, 32);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The theorem on random address streams, across capacities and line
    /// sizes.
    #[test]
    fn lru_theorem_on_random_streams(
        raw in proptest::collection::vec(0u64..4096, 50..800),
        capacity in 1usize..64,
        line_shift in 3u32..7,
    ) {
        let line = 1u64 << line_shift;
        let addrs: Vec<u64> = raw.iter().map(|&x| x * 8).collect();
        check_equivalence(&addrs, capacity, line);
    }

    /// Reuse distances are layout-shift invariant: adding a constant offset
    /// to every address (aligned to the granularity) leaves all distances
    /// unchanged.
    #[test]
    fn distances_are_translation_invariant(
        raw in proptest::collection::vec(0u64..2048, 20..400),
        shift in 0u64..1000,
    ) {
        let mut a1 = ReuseDistanceAnalyzer::new(8);
        let mut a2 = ReuseDistanceAnalyzer::new(8);
        for &x in &raw {
            let d1 = a1.access(x * 8);
            let d2 = a2.access(x * 8 + shift * 8);
            prop_assert_eq!(d1, d2);
        }
    }

    /// Histogram totals: reuses + cold accesses = total accesses, and the
    /// number of distinct data equals the cold count.
    #[test]
    fn histogram_accounting(raw in proptest::collection::vec(0u64..512, 1..500)) {
        let mut a = ReuseDistanceAnalyzer::new(1);
        for &x in &raw {
            a.access(x);
        }
        let h = &a.hist;
        prop_assert_eq!(h.reuses + h.cold, raw.len() as u64);
        prop_assert_eq!(h.cold as usize, a.distinct());
        let binned: u64 = h.bins.iter().sum();
        prop_assert_eq!(binned, h.reuses);
    }
}
