//! Shape-level regression tests for the paper's headline claims. These
//! assert the *direction and rough magnitude* of each result, not absolute
//! numbers (our substrate is a simulator, not an Origin2000).

use global_cache_reuse::cache::{CostModel, HierarchySink, MemoryHierarchy};
use global_cache_reuse::exec::Machine;
use global_cache_reuse::ir::ParamBinding;
use global_cache_reuse::opt::pipeline::{apply_strategy, Strategy};
use global_cache_reuse::opt::regroup::RegroupLevel;
use global_cache_reuse::reuse::driven::{measure_order, measure_program_order, reuse_driven_order};
use global_cache_reuse::reuse::TraceCapture;

fn measure(app: &gcr_apps::AppSpec, strategy: Strategy, size: i64) -> (f64, [u64; 3]) {
    let (prog, bind) = (app.build)(size);
    let opt = apply_strategy(&prog, strategy);
    let layout = opt.layout(&bind);
    let mut m = Machine::with_layout(&opt.program, bind, layout);
    let mut sink =
        HierarchySink::new(MemoryHierarchy::origin2000_scaled(app.l1_scale, app.l2_scale));
    m.run_steps(&mut sink, 2);
    let c = sink.hierarchy.counts();
    (CostModel::default().cycles(&m.stats(), &c), [c.l1, c.l2, c.tlb])
}

fn app(name: &str) -> gcr_apps::AppSpec {
    gcr_apps::evaluation_apps().into_iter().find(|a| a.name == name).unwrap()
}

const NEW: Strategy = Strategy::FusionRegroup { levels: 3, regroup: RegroupLevel::Multi };

/// "ADI used the largest input size and consequently enjoyed the highest
/// improvement ... a speedup of 2.33."
#[test]
fn adi_combined_strategy_wins_big() {
    let a = app("ADI");
    let (t0, m0) = measure(&a, Strategy::Original, a.default_size);
    let (t1, m1) = measure(&a, NEW, a.default_size);
    assert!(t0 / t1 > 2.0, "speedup {:.2} should exceed 2x", t0 / t1);
    assert!(m1[1] < m0[1] / 2, "L2 misses at least halved");
    assert!(m1[2] < m0[2], "TLB misses reduced");
}

/// "Although both together are always beneficial, neither of them is so
/// without the other. Fusion may degrade performance without grouping."
#[test]
fn fusion_without_grouping_can_lose() {
    let a = app("ADI");
    let (t0, _) = measure(&a, Strategy::Original, a.default_size);
    let (tf, _) = measure(&a, Strategy::FusionOnly { levels: 3 }, a.default_size);
    let (tg, _) = measure(&a, NEW, a.default_size);
    assert!(tg < t0, "combined strategy beats original");
    assert!(tg < tf, "combined strategy beats fusion alone");
    // Fusion alone is at best marginal on ADI (the paper saw slowdowns).
    assert!(tf > 0.85 * t0, "fusion alone is not the win: {tf:.3e} vs {t0:.3e}");
}

/// SP, Section 4.4: full three-level fusion without regrouping slows the
/// program down by creating too much data access in the innermost loop
/// (the paper saw 8x more TLB misses and a 2.04x slowdown).
#[test]
fn sp_full_fusion_blows_up_tlb() {
    let a = app("SP");
    let (t0, m0) = measure(&a, Strategy::Original, a.default_size);
    let (tf, mf) = measure(&a, Strategy::FusionOnly { levels: 3 }, a.default_size);
    assert!(mf[2] > 4 * m0[2], "TLB blowup: {} vs {}", mf[2], m0[2]);
    assert!(tf > 1.5 * t0, "full fusion alone slows SP: {:.2}x", tf / t0);
    // Regrouping rescues it.
    let (tg, mg) = measure(&a, NEW, a.default_size);
    assert!(mg[2] < mf[2] / 4, "regrouping repairs the TLB: {} vs {}", mg[2], mf[2]);
    assert!(tg < t0 * 1.05, "combined strategy competitive: {:.2}x", tg / t0);
}

/// SP, Section 4.4: one-level fusion reduces L2 misses substantially
/// (the paper: -33%).
#[test]
fn sp_one_level_fusion_cuts_l2() {
    let a = app("SP");
    let (_, m0) = measure(&a, Strategy::Original, a.default_size);
    let (_, m1) = measure(&a, Strategy::FusionOnly { levels: 1 }, a.default_size);
    assert!(
        (m1[1] as f64) < 0.85 * m0[1] as f64,
        "L2 reduced by one-level fusion: {} vs {}",
        m1[1],
        m0[1]
    );
}

/// Section 4.4: SP's transformation statistics follow the paper's
/// 157 -> 8 level-1 loops and 15 -> 42 -> 17 arrays.
#[test]
fn sp_transformation_statistics() {
    let orig = gcr_apps::sp::program();
    assert_eq!(orig.arrays.iter().filter(|a| !a.is_scalar()).count(), 15);
    let opt = apply_strategy(&orig, NEW);
    let before = opt.fusion.loops_before[0];
    let after = opt.fusion.loops_after[0];
    assert!(before >= 60, "distribution creates many level-1 loops: {before}");
    assert!(after <= 8, "level-1 fusion collapses them: {after} (paper: 8)");
    assert_eq!(opt.regroup.arrays, 43, "15 arrays split into 43 (paper: 42)");
    assert_eq!(opt.regroup.allocations, 17, "regrouped into 17 (paper: 17)");
}

/// Section 2.3: after fusion the worst-case chain's reuse distance is
/// independent of the input size.
#[test]
fn fused_reuse_distance_is_input_independent() {
    let src = "
program chain
param N
array A[N], B[N]

for i = 1, N - 1 {
  B[i] = f(A[i+1])
}
for i = 2, N {
  B[i] = g(B[i-1])
}
for i = 2, N {
  A[i] = h(B[i-1])
}
";
    let orig = global_cache_reuse::frontend::parse(src).unwrap();
    let mut fused = orig.clone();
    global_cache_reuse::opt::fuse_program(
        &mut fused,
        &global_cache_reuse::opt::FusionOptions::default(),
    );
    let max_bin = |prog: &global_cache_reuse::ir::Program, n: i64| {
        let mut m = Machine::new(prog, ParamBinding::new(vec![n]));
        let mut sink = global_cache_reuse::reuse::DistanceSink::elements();
        m.run(&mut sink);
        sink.analyzer.hist.bins.len()
    };
    assert_eq!(max_bin(&fused, 128), max_bin(&fused, 1024), "fused: constant");
    assert!(max_bin(&orig, 1024) > max_bin(&orig, 128), "original: grows");
}

/// Section 2.2: reuse-driven execution removes the long reuses of a
/// multi-pass program (ADI).
#[test]
fn reuse_driven_removes_long_reuses() {
    let prog = gcr_apps::adi::program();
    let mut m = Machine::new(&prog, ParamBinding::new(vec![40]));
    let mut cap = TraceCapture::new();
    m.run(&mut cap);
    let trace = cap.finish();
    let (h_prog, _) = measure_program_order(&trace);
    let order = reuse_driven_order(&trace);
    let (h_driven, _) = measure_order(&trace, &order);
    let threshold = 2048;
    assert!(
        h_driven.at_least(threshold) * 4 < h_prog.at_least(threshold).max(1),
        "long reuses shrink: {} vs {}",
        h_driven.at_least(threshold),
        h_prog.at_least(threshold)
    );
}

/// Swim is the program that requires loop splitting (peeling).
#[test]
fn swim_needs_splitting() {
    let mut p = gcr_apps::swim::program();
    let rep = global_cache_reuse::opt::fuse_program(
        &mut p,
        &global_cache_reuse::opt::FusionOptions::default(),
    );
    assert!(rep.peeled >= 1, "{rep:?}");
}

/// Tomcatv fuses into a single nest despite its reductions and forward
/// recurrences.
#[test]
fn tomcatv_fuses_fully() {
    let mut p = gcr_apps::tomcatv::program();
    global_cache_reuse::opt::fuse_program(
        &mut p,
        &global_cache_reuse::opt::FusionOptions::default(),
    );
    assert_eq!(p.count_nests(), 1);
}

/// The reuse-driven order of a real application trace is a permutation
/// that respects every flow dependence (each read happens after its
/// producing write).
#[test]
fn driven_order_respects_flow_deps_on_real_trace() {
    let prog = gcr_apps::tomcatv::program();
    let mut m = Machine::new(&prog, ParamBinding::new(vec![12]));
    let mut cap = TraceCapture::new();
    m.run(&mut cap);
    let trace = cap.finish();
    let order = reuse_driven_order(&trace);
    // Permutation.
    let mut sorted = order.clone();
    sorted.sort_unstable();
    assert!(sorted.iter().enumerate().all(|(i, &x)| i as u32 == x));
    // Flow-dependence respect: replay writes/reads per address.
    use std::collections::HashMap;
    let mut pos = vec![0u32; trace.len()];
    for (p, &i) in order.iter().enumerate() {
        pos[i as usize] = p as u32;
    }
    let mut last_writer: HashMap<u64, u32> = HashMap::new();
    for i in 0..trace.len() {
        for (addr, is_write, _) in trace.accesses(i) {
            if !is_write {
                if let Some(&w) = last_writer.get(&addr) {
                    assert!(
                        pos[w as usize] < pos[i],
                        "instr {i} reads {addr:#x} before its producer {w}"
                    );
                }
            }
        }
        for (addr, is_write, _) in trace.accesses(i) {
            if is_write {
                last_writer.insert(addr, i as u32);
            }
        }
    }
}
