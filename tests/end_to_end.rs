//! Cross-crate integration tests: frontend → optimizer → interpreter →
//! simulators, over the real benchmark applications.

use global_cache_reuse::cache::{HierarchySink, MemoryHierarchy};
use global_cache_reuse::exec::{Machine, NullSink};
use global_cache_reuse::ir::ParamBinding;
use global_cache_reuse::opt::pipeline::{apply_strategy, Strategy};
use global_cache_reuse::opt::regroup::RegroupLevel;

const STRATEGIES: [Strategy; 5] = [
    Strategy::Original,
    Strategy::Sgi,
    Strategy::FusionOnly { levels: 3 },
    Strategy::FusionRegroup { levels: 3, regroup: RegroupLevel::Multi },
    Strategy::RegroupOnly,
];

/// Every strategy on every app: validates, runs, and performs the same
/// number of logical accesses as the original (transformations reorder
/// work, never add or remove it).
#[test]
fn strategies_preserve_work() {
    for app in gcr_apps::evaluation_apps() {
        let (prog, bind) = (app.build)(12);
        let mut baseline = None;
        for strategy in STRATEGIES {
            let opt = apply_strategy(&prog, strategy);
            global_cache_reuse::ir::validate::validate(&opt.program)
                .unwrap_or_else(|e| panic!("{} {:?}: {e:?}", app.name, strategy));
            let layout = opt.layout(&bind);
            let mut m = Machine::with_layout(&opt.program, bind.clone(), layout);
            m.run(&mut NullSink);
            let accesses = m.stats().accesses();
            let base = *baseline.get_or_insert(accesses);
            assert_eq!(accesses, base, "{} {:?}", app.name, strategy);
        }
    }
}

/// The full measurement stack produces coherent miss counts: refs ≥ L1
/// misses ≥ L2 misses, and TLB misses bounded by refs.
#[test]
fn miss_counts_are_coherent() {
    for app in gcr_apps::evaluation_apps() {
        let (prog, bind) = (app.build)(16);
        let opt = apply_strategy(&prog, Strategy::Original);
        let layout = opt.layout(&bind);
        let mut m = Machine::with_layout(&opt.program, bind, layout);
        let mut sink = HierarchySink::new(MemoryHierarchy::origin2000_scaled(8, 16));
        m.run(&mut sink);
        let c = sink.hierarchy.counts();
        assert_eq!(c.refs, m.stats().accesses(), "{}", app.name);
        assert!(c.l1 <= c.refs);
        assert!(c.l2 <= c.l1, "{}: L2 sees only L1 misses", app.name);
        assert!(c.tlb <= c.refs);
        assert!(c.l1 > 0, "{}: a real program misses sometimes", app.name);
    }
}

/// Fused + regrouped execution computes the same values as the original
/// for all four applications (two time steps, element-exact for plain
/// assignments).
#[test]
fn full_pipeline_is_semantics_preserving() {
    for app in gcr_apps::evaluation_apps() {
        let (prog, bind) = (app.build)(12);
        let opt = apply_strategy(
            &prog,
            Strategy::FusionRegroup { levels: 3, regroup: RegroupLevel::Multi },
        );
        let mut m1 = Machine::new(&prog, bind.clone());
        let layout = opt.layout(&bind);
        let mut m2 = Machine::with_layout(&opt.program, bind, layout);
        // Equalize initial data for arrays whose identity changed (splits).
        for (ai, decl) in prog.arrays.iter().enumerate() {
            let vals = m1.read_array(global_cache_reuse::ir::ArrayId::from_index(ai));
            if let Some(t) = opt.program.array_by_name(&decl.name) {
                if opt.program.array(t).rank() == decl.rank() {
                    m2.write_array(t, &vals).unwrap();
                    continue;
                }
            }
            let comps = decl.dims[0].as_const().expect("split dim is constant") as usize;
            for cidx in 0..comps {
                let part = opt
                    .program
                    .array_by_name(&format!("{}__{}", decl.name, cidx + 1))
                    .expect("split component exists");
                let slice: Vec<f64> = vals.iter().skip(cidx).step_by(comps).copied().collect();
                m2.write_array(part, &slice).unwrap();
            }
        }
        m1.run_steps(&mut NullSink, 2);
        m2.run_steps(&mut NullSink, 2);
        for (ai, decl) in prog.arrays.iter().enumerate() {
            if decl.is_scalar() {
                continue; // reductions may reassociate
            }
            let v1 = m1.read_array(global_cache_reuse::ir::ArrayId::from_index(ai));
            if let Some(t) = opt.program.array_by_name(&decl.name) {
                if opt.program.array(t).rank() == decl.rank() {
                    let v2 = m2.read_array(t);
                    for (k, (x, y)) in v1.iter().zip(&v2).enumerate() {
                        assert!(
                            (x - y).abs() <= 1e-9 * x.abs().max(1.0),
                            "{} array {} elem {k}: {x} vs {y}",
                            app.name,
                            decl.name
                        );
                    }
                }
            }
        }
    }
}

/// Transformed programs round-trip through the printer and parser.
#[test]
fn transformed_programs_reparse() {
    for app in gcr_apps::evaluation_apps() {
        let (prog, _) = (app.build)(12);
        let opt = apply_strategy(&prog, Strategy::FusionOnly { levels: 3 });
        let text = global_cache_reuse::ir::print::print_program(&opt.program);
        let reparsed = global_cache_reuse::frontend::parse(&text)
            .unwrap_or_else(|e| panic!("{}: reparse failed: {e}\n{text}", app.name));
        let text2 = global_cache_reuse::ir::print::print_program(&reparsed);
        assert_eq!(text, text2, "{}: printer fixpoint", app.name);
    }
}

/// The facade crate exposes the whole stack.
#[test]
fn facade_reexports() {
    let p = global_cache_reuse::frontend::parse(
        "program t\nparam N\narray A[N]\nfor i = 1, N {\n A[i] = f(A[i])\n}\n",
    )
    .unwrap();
    let st = global_cache_reuse::analysis::stats::program_stats(&p);
    assert_eq!(st.loops, 1);
    let mut m = Machine::new(&p, ParamBinding::new(vec![4]));
    m.run(&mut NullSink);
    assert_eq!(m.stats().instances, 4);
}

/// Every transformed program passes the static bounds checker — no
/// transformation may manufacture an out-of-bounds access.
#[test]
fn transformed_programs_stay_in_bounds() {
    for app in gcr_apps::evaluation_apps() {
        for strategy in STRATEGIES {
            let (prog, _) = (app.build)(12);
            let opt = apply_strategy(&prog, strategy);
            let issues = global_cache_reuse::analysis::bounds::check_bounds(&opt.program);
            assert!(issues.is_empty(), "{} {:?}: {issues:?}", app.name, strategy);
        }
    }
}
