//! Additional end-to-end claims: per-application wins, the regroup-only
//! ablation, Figure 9 shape pins, and the CLI driving a full application.

use global_cache_reuse::cache::{CostModel, HierarchySink, MemoryHierarchy};
use global_cache_reuse::exec::Machine;
use global_cache_reuse::opt::pipeline::Strategy;
use global_cache_reuse::opt::regroup::RegroupLevel;

fn cycles(app: &gcr_apps::AppSpec, strategy: Strategy) -> f64 {
    let (prog, bind) = (app.build)(app.default_size);
    let opt = global_cache_reuse::opt::pipeline::apply_strategy(&prog, strategy);
    let layout = opt.layout(&bind);
    let mut m = Machine::with_layout(&opt.program, bind, layout);
    let mut sink =
        HierarchySink::new(MemoryHierarchy::origin2000_scaled(app.l1_scale, app.l2_scale));
    m.run_steps(&mut sink, 2);
    CostModel::default().cycles(&m.stats(), &sink.hierarchy.counts())
}

const NEW: Strategy = Strategy::FusionRegroup { levels: 3, regroup: RegroupLevel::Multi };

/// "The combined transformation ... improving overall speed by 14% to a
/// factor of 2.33": the full strategy beats the original on every program.
#[test]
fn combined_strategy_beats_original_everywhere() {
    for app in gcr_apps::evaluation_apps() {
        let t0 = cycles(&app, Strategy::Original);
        let t1 = cycles(&app, NEW);
        assert!(t1 < t0 * 1.0, "{}: combined {:.3e} vs original {:.3e}", app.name, t1, t0);
    }
}

/// Ablation A1: "grouping may see little opportunity without fusion" —
/// regroup-only never beats the combined strategy, and it *degrades* the
/// multi-phase kernels whose arrays are not all used together (Swim,
/// Tomcatv, SP). ADI is the exception that proves the rule: its three
/// arrays share every nest, so grouping finds its opportunity even
/// without fusion.
#[test]
fn regroup_without_fusion_does_not_win() {
    for app in gcr_apps::evaluation_apps() {
        let t0 = cycles(&app, Strategy::Original);
        let tg = cycles(&app, Strategy::RegroupOnly);
        let tn = cycles(&app, NEW);
        assert!(tn < tg, "{}: combined must beat regroup-only", app.name);
        if app.name != "ADI" {
            assert!(tg > 0.95 * t0, "{}: regroup-only is no silver bullet", app.name);
        }
    }
}

/// Figure 9 shape pins for all four applications.
#[test]
fn figure9_shapes() {
    use global_cache_reuse::analysis::stats::program_stats;
    let expect = [("Swim", 8, 14), ("Tomcatv", 5, 7), ("ADI", 6, 3), ("SP", 14, 15)];
    for app in gcr_apps::evaluation_apps() {
        let (prog, _) = (app.build)(16);
        let st = program_stats(&prog);
        let (_, nests, arrays) = expect.iter().find(|(n, _, _)| *n == app.name).unwrap();
        assert_eq!(st.nests, *nests, "{} nests", app.name);
        assert_eq!(st.arrays, *arrays, "{} arrays", app.name);
    }
}

/// The CLI drives a complete application end to end.
#[test]
fn cli_runs_a_full_application() {
    let mut o = gcr_cli::parse_args(&[
        "-".to_string(),
        "--no-emit".into(),
        "--summary".into(),
        "--check".into(),
        "--simulate".into(),
        "20".into(),
        "--cache-scale".into(),
        "8,16".into(),
    ])
    .unwrap();
    o.input = "mem".into();
    let out = gcr_cli::run_source(&gcr_apps::sp::source(), &o).unwrap();
    assert!(out.contains("fusion:"), "{out}");
    assert!(out.contains("regrouping: 43 arrays -> 17 allocations"), "{out}");
    assert!(out.contains("bounds check (output): ok"), "{out}");
    assert!(out.contains("simulate N=20"), "{out}");
}

/// The SGI-like baseline helps but does not out-reduce the global strategy
/// on the bandwidth metric (L2 misses) by any meaningful margin — the two
/// are within 15% on SP (our baseline is stronger than the paper's, see
/// EXPERIMENTS.md) and New wins clearly on the 2-D kernels.
#[test]
fn global_strategy_beats_baseline_on_l2() {
    for app in gcr_apps::evaluation_apps() {
        let (prog, bind) = (app.build)(app.default_size);
        let l2 = |strategy| {
            let opt = global_cache_reuse::opt::pipeline::apply_strategy(&prog, strategy);
            let layout = opt.layout(&bind);
            let mut m = Machine::with_layout(&opt.program, bind.clone(), layout);
            let mut sink =
                HierarchySink::new(MemoryHierarchy::origin2000_scaled(app.l1_scale, app.l2_scale));
            m.run_steps(&mut sink, 2);
            sink.hierarchy.counts().l2
        };
        let sgi = l2(Strategy::Sgi);
        let new = l2(NEW);
        assert!(new <= sgi + sgi * 15 / 100, "{}: New {} vs SGI {} on L2", app.name, new, sgi);
    }
}
